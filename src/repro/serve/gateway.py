"""Async serving gateway: concurrent request fan-in with admission control.

The paper's two-branch model is a handful of tiny matmuls per step, so
fleet-serving cost is dominated by transport and orchestration, not the
forward pass.  :class:`SocGateway` is the transport-side front-end that
regime calls for: an asyncio server surface that accepts ``estimate`` /
``predict`` / ``rollout`` requests *concurrently*, funnels the
request/response kinds through the
:class:`~repro.serve.scheduler.MicroBatcher` (size/deadline coalescing,
one batched engine call per flush, a future per request), and applies
**admission control**:

- at most ``max_in_flight`` requests may be waiting on completions;
- a request arriving beyond that is **shed** — it immediately gets an
  ``ok=False`` :class:`~repro.serve.scheduler.Completion` whose error
  starts with ``"shed:"`` instead of joining an unbounded queue.  A
  full queue that keeps accepting work converts overload into
  unbounded latency for every caller; failing fast keeps the latency
  of admitted requests bounded and gives callers an explicit signal to
  back off (classic load-shed policy).  Rollouts past the limit raise
  :class:`GatewayOverloaded` (they return trajectory dicts, not
  completions).

A background *flusher* task releases deadline-expired batches, so a
lone request is never stranded waiting for batchmates.  Heavy
``rollout`` calls run on the thread-pool executor holding the
batcher's lock; the event loop only ever takes that lock
*non-blocking* — when it is free (normal traffic) submissions and
flushes run inline at full speed, and when a rollout holds it they
fall back to the executor, so a multi-second rollout can never freeze
the loop: it keeps accepting and shedding throughout, and queued
batches flush as soon as the engine frees up.

Per-endpoint accounting (:meth:`SocGateway.stats_dict`) reports
request/ok/error/shed counts, latency percentiles, and sustained
throughput — the numbers the CI soak lane and
``benchmarks/bench_fleet_throughput.py`` gate.  Since the monitor PR
those series live in a :class:`~repro.monitor.metrics.MetricsRegistry`
(pass one in to share it with the engine and drift monitors): counters
per endpoint plus a streaming-quantile latency histogram — the old
``EndpointStats`` reservoir (262k floats per endpoint) is retired in
favor of ~45 floats of P² sketch state, and the same numbers become
available as Prometheus text and mergeable JSON snapshots.

The gateway is also where **crash retry** lands: when a batched engine
call dies with :class:`~repro.serve.workers.WorkerCrashError` (a shard
worker subprocess crashed mid-request), the gateway restarts the dead
workers (``engine.restart_dead_workers()``) and the batcher retries
the affected batch once against the healed fleet — journaled workers
come back with their cells, so the requests succeed instead of
surfacing ``ok=False``.  ``gateway_retries_total`` counts the
recoveries.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Callable, Iterable

from ..core.rollout import RolloutResult
from ..datasets.base import CycleRecord
from ..monitor.metrics import MetricsRegistry
from ..monitor.resources import install_process_metrics
from ..monitor.tracing import activate
from .scheduler import Completion, MicroBatcher

__all__ = ["GatewayOverloaded", "SocGateway"]

_ENDPOINTS = ("estimate", "predict", "rollout")


class GatewayOverloaded(RuntimeError):
    """A rollout was refused because the gateway is at capacity."""


class _Endpoint:
    """Registry-backed accounting for one gateway endpoint.

    Replaces the retired ``EndpointStats`` reservoir: the four
    counters and the latency histogram are plain registry series (so
    they ship in snapshots and merge across processes), and the
    instrument objects are cached here because ``observe`` runs once
    per completion on the hot path.
    """

    __slots__ = ("requests", "completed", "errors", "shed", "latency")

    def __init__(self, metrics: MetricsRegistry, endpoint: str):
        self.requests = metrics.counter("gateway_requests_total", endpoint=endpoint)
        self.completed = metrics.counter("gateway_completed_total", endpoint=endpoint)
        self.errors = metrics.counter("gateway_errors_total", endpoint=endpoint)
        self.shed = metrics.counter("gateway_shed_total", endpoint=endpoint)
        self.latency = metrics.histogram("gateway_latency_seconds", endpoint=endpoint)

    def observe(self, latency_s: float, ok: bool) -> None:
        """Record one completion's end-to-end latency."""
        self.completed.inc()
        if not ok:
            self.errors.inc()
        self.latency.observe(latency_s)

    def percentile_ms(self, q: float) -> float:
        """Streaming latency quantile (milliseconds); 0 before any sample."""
        if self.latency.count == 0:
            return 0.0
        return self.latency.quantile(q / 100.0) * 1e3


class SocGateway:
    """Asyncio front-end over a fleet engine (or sharded fleet).

    Parameters
    ----------
    engine:
        Any object with the :class:`~repro.serve.engine.FleetEngine`
        serving API — a single engine, a
        :class:`~repro.serve.sharding.ShardedFleet` of in-process
        shards, or one backed by
        :class:`~repro.serve.workers.ProcessShardWorker` subprocesses.
    max_batch, max_delay_s:
        Micro-batching knobs, passed to the internal
        :class:`MicroBatcher`.
    max_in_flight:
        Admission limit: requests concurrently awaiting completions
        (estimates, predicts and rollouts all count).  Arrivals beyond
        it are shed.
    clock:
        Monotonic time source (injectable for deterministic tests).
    metrics:
        Optional :class:`~repro.monitor.metrics.MetricsRegistry` the
        per-endpoint series land in; pass the registry shared with the
        engine/drift monitors to get one coherent snapshot, or omit it
        and the gateway creates its own (``gateway.metrics``).
    tracer:
        Optional :class:`~repro.monitor.tracing.SpanTracer`.  When set,
        the gateway opens a root span per request (subject to the
        tracer's sampling policy) and threads the trace context through
        the batcher, shards, wire protocol and kernels — per-request
        latency attribution at the cost of one sampling decision per
        request.  ``None`` (default) keeps the request path trace-free.

    Use as an async context manager (``async with SocGateway(...)``) so
    the deadline flusher runs; without it, call :meth:`pump`
    explicitly from the serving loop.
    """

    def __init__(
        self,
        engine,
        *,
        max_batch: int = 64,
        max_delay_s: float = 0.010,
        max_in_flight: int = 1024,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
        tracer=None,
    ):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.engine = engine
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        install_process_metrics(self.metrics)
        self.batcher = MicroBatcher(
            engine,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            clock=clock,
            on_worker_crash=self._recover_workers,
        )
        self.max_in_flight = max_in_flight
        self.clock = clock
        self.stats: dict[str, _Endpoint] = {name: _Endpoint(self.metrics, name) for name in _ENDPOINTS}
        self._retries = self.metrics.counter("gateway_retries_total")
        self._started_s = clock()
        self._in_flight = 0
        self._waiters: dict[int, asyncio.Future] = {}
        # completions drained (by another task's executor round-trip)
        # before their submitter registered a waiter — claimed on return
        self._orphans: dict[int, Completion] = {}
        # requests whose submitter was cancelled mid-enqueue; their
        # eventual completions are dropped instead of parked forever
        self._abandoned: set[int] = set()
        self._flusher: asyncio.Task | None = None
        self._next_shed_id = -1  # shed requests never reach the batcher; give them distinct ids

    # -- lifecycle -----------------------------------------------------
    async def __aenter__(self) -> SocGateway:
        self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def start(self) -> None:
        """Start the background deadline flusher (idempotent)."""
        if self._flusher is None or self._flusher.done():
            self._flusher = asyncio.get_running_loop().create_task(self._flush_loop())

    async def stop(self) -> None:
        """Stop the flusher and force out any queued batches.

        Every admitted request is completed before this returns — the
        gateway never strands a waiter on shutdown.  (An admitted
        request may still be crossing the executor when the first
        flush runs, so this drains until no waiter is left.)
        """
        if self._flusher is not None:
            self._flusher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._flusher
            self._flusher = None
        loop = asyncio.get_running_loop()
        self._dispatch(await loop.run_in_executor(None, self.batcher.flush))
        while self._waiters:
            await asyncio.sleep(0)  # let submitters finish registering
            self._dispatch(await loop.run_in_executor(None, self.batcher.flush))

    async def _flush_loop(self) -> None:
        # poll well inside the deadline so a deadline flush fires at most
        # ~25% late; the size trigger needs no polling at all
        interval = max(self.batcher.max_delay_s / 4.0, 0.001)
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval)
            if self.batcher.lock.acquire(blocking=False):
                try:
                    completions = self.batcher.poll()
                finally:
                    self.batcher.lock.release()
                self._dispatch(completions)
            else:
                # a rollout holds the lock; poll on the executor so the
                # flush fires the moment the engine frees up — without
                # blocking the event loop in the meantime.  stop() may
                # cancel this task while the poll blocks, but the thread
                # still drains the outbox — dispatch from a callback that
                # runs regardless of this task's fate, so those
                # completions cannot be lost
                poll_future = loop.run_in_executor(None, self.batcher.poll)
                poll_future.add_done_callback(
                    lambda f: None if f.cancelled() or f.exception() else self._dispatch(f.result())
                )
                await poll_future

    def pump(self) -> int:
        """Synchronously poll the batcher and resolve due completions.

        Returns the number of completions dispatched.  Only for
        gateways running without the flusher task (deterministic
        tests, externally-driven serving loops) — unlike the flusher
        this blocks on the batcher lock, so never call it with a
        rollout in flight.
        """
        return self._dispatch(self.batcher.poll())

    # -- endpoints -----------------------------------------------------
    async def estimate(self, cell_id: str, voltage: float, current: float, temp_c: float) -> Completion:
        """Branch 1 estimate for one cell; resolves when its batch fires."""
        return await self._submit(
            "estimate",
            cell_id,
            lambda trace: self.batcher.submit_estimate(cell_id, voltage, current, temp_c, trace=trace),
        )

    async def predict(
        self, cell_id: str, current_avg: float, temp_avg_c: float, horizon_s: float
    ) -> Completion:
        """Branch 2 what-if for one cell; resolves when its batch fires."""
        return await self._submit(
            "predict",
            cell_id,
            lambda trace: self.batcher.submit_predict(
                cell_id, current_avg, temp_avg_c, horizon_s, trace=trace
            ),
        )

    async def rollout(
        self, assignments: Iterable[tuple[str, CycleRecord]], step_s: float
    ) -> dict[str, RolloutResult]:
        """Fleet rollout on a worker thread; the event loop stays live.

        Raises :class:`GatewayOverloaded` when shed by admission
        control.  The engine call holds the batcher lock, so request
        batches queue (and are shed past ``max_in_flight``) while the
        rollout computes, then flush when the engine frees up.  A
        :class:`~repro.serve.workers.WorkerCrashError` mid-rollout
        triggers worker recovery and one retry (journaled workers
        resume from their journals), like the request endpoints.
        """
        from .workers import WorkerCrashError  # late: workers imports serve modules

        stats = self.stats["rollout"]
        stats.requests.inc()
        if self._in_flight >= self.max_in_flight:
            stats.shed.inc()
            raise GatewayOverloaded(f"shed: gateway at capacity ({self.max_in_flight} requests in flight)")
        self._in_flight += 1
        t_start = self.clock()
        pairs = list(assignments)
        root = None if self.tracer is None else self.tracer.start_trace("gateway.rollout", cells=len(pairs))
        ctx = None if root is None else root.ctx

        def _run() -> dict[str, RolloutResult]:
            # activate on the executor thread so shard/engine/kernel
            # spans parent under this rollout's root
            with self.batcher.lock, activate(ctx):
                return self.engine.rollout_fleet(pairs, step_s)

        loop = asyncio.get_running_loop()
        try:
            try:
                result = await loop.run_in_executor(None, _run)
            except WorkerCrashError:
                if getattr(self.engine, "restart_dead_workers", None) is None:
                    raise  # nothing to heal: single engines, in-process shards
                # retry even when _recover_workers restarted nothing — a
                # concurrent recovery (another request batch, the control
                # loop) may already have healed the fleet for us
                self._recover_workers()
                result = await loop.run_in_executor(None, _run)
        except Exception as exc:
            self._in_flight -= 1
            stats.completed.inc()
            stats.errors.inc()
            if root is not None:
                root.finish(error=type(exc).__name__)
            raise
        self._in_flight -= 1
        stats.observe(self.clock() - t_start, ok=True)
        if root is not None:
            root.finish()
        return result

    # -- accounting ----------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Requests currently admitted and awaiting completions."""
        return self._in_flight

    def stats_dict(self) -> dict:
        """Per-endpoint counters, latency percentiles and throughput.

        Same shape as before the metrics registry existed (the soak
        lane and throughput bench consume it); the underlying series
        are registry-backed, so :meth:`metrics_snapshot` carries the
        identical numbers in the mergeable format.
        """
        elapsed = max(self.clock() - self._started_s, 1e-9)
        report: dict = {"elapsed_s": elapsed, "retries": int(self._retries.value)}
        for name, ep in self.stats.items():
            completed = int(ep.completed.value)
            errors = int(ep.errors.value)
            report[name] = {
                "requests": int(ep.requests.value),
                "completed": completed,
                "ok": completed - errors,
                "errors": errors,
                "shed": int(ep.shed.value),
                "p50_ms": ep.percentile_ms(50),
                "p95_ms": ep.percentile_ms(95),
                "p99_ms": ep.percentile_ms(99),
                "req_per_s": completed / elapsed,
            }
        return report

    def metrics_snapshot(self) -> dict:
        """JSON snapshot of the gateway's metrics registry."""
        return self.metrics.snapshot()

    def _recover_workers(self) -> bool:
        """Restart dead shard workers so a crashed batch can retry.

        Wired as the batcher's ``on_worker_crash`` hook (and used by
        :meth:`rollout` directly).  Engines without
        ``restart_dead_workers`` — single engines, in-process shards —
        have nothing to heal, so the crash propagates as before.
        """
        restart = getattr(self.engine, "restart_dead_workers", None)
        if restart is None:
            return False
        try:
            restarted = restart()
        except Exception:
            return False  # a worker that cannot respawn stays dead; requests error per cell
        if restarted:
            self._retries.inc()
        return bool(restarted)

    # ------------------------------------------------------------------
    async def _submit(self, kind: str, cell_id: str, enqueue: Callable[[object], int]) -> Completion:
        stats = self.stats[kind]
        stats.requests.inc()
        if self._in_flight >= self.max_in_flight:
            stats.shed.inc()
            shed_id, self._next_shed_id = self._next_shed_id, self._next_shed_id - 1
            return Completion(
                req_id=shed_id,
                cell_id=cell_id,
                kind=kind,
                value=float("nan"),
                wait_s=0.0,
                batch_size=0,
                error=f"shed: gateway at capacity ({self.max_in_flight} requests in flight)",
            )
        self._in_flight += 1
        t_start = self.clock()
        # root span opens after admission (shed requests record nothing);
        # its context rides on the queued Request so the batcher, shards
        # and workers can attribute their stages to this trace
        root = None if self.tracer is None else self.tracer.start_trace(f"gateway.{kind}", cell_id=cell_id)
        trace_ctx = None if root is None else root.ctx
        completion: Completion | None = None
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        try:
            # the enqueue takes the batcher lock (and a size trigger runs
            # the engine inline).  Uncontended — the common case — that
            # is microseconds, so do it inline; when a rollout holds the
            # lock for seconds, fall back to the executor rather than
            # blocking the event loop on it
            if self.batcher.lock.acquire(blocking=False):
                try:
                    req_id, ready = enqueue(trace_ctx), self.batcher.drain()
                finally:
                    self.batcher.lock.release()
            else:
                enq_future = loop.run_in_executor(
                    None, lambda: (enqueue(trace_ctx), self.batcher.drain())
                )
                try:
                    # shielded: if the caller is cancelled (a client
                    # timeout) the enqueue still lands on the executor —
                    # mark its request abandoned so the eventual
                    # completion is dropped, not parked forever
                    req_id, ready = await asyncio.shield(enq_future)
                except asyncio.CancelledError:
                    enq_future.add_done_callback(self._abandon_enqueued)
                    raise
            orphan = self._orphans.pop(req_id, None)
            if orphan is not None:
                # another task's drain beat us to our own completion
                future.set_result(orphan)
            else:
                self._waiters[req_id] = future
            # the enqueue may have size-triggered a flush (for this
            # request and/or earlier waiters) — resolve those now
            self._dispatch(ready)
            completion = await future
        finally:
            self._in_flight -= 1
            if root is not None:
                if completion is None:  # cancelled before its batch fired
                    root.finish(error="cancelled")
                else:
                    root.finish(ok=completion.ok, batch_size=completion.batch_size)
        stats.observe(self.clock() - t_start, ok=completion.ok)
        return completion

    def _abandon_enqueued(self, future) -> None:
        if future.cancelled() or future.exception():
            return
        req_id, ready = future.result()
        self._waiters.pop(req_id, None)
        if self._orphans.pop(req_id, None) is None:
            self._abandoned.add(req_id)
        self._dispatch(ready)

    def _dispatch(self, completions: list[Completion]) -> int:
        for completion in completions:
            if completion.req_id in self._abandoned:
                self._abandoned.discard(completion.req_id)
                continue
            waiter = self._waiters.pop(completion.req_id, None)
            if waiter is not None:
                if not waiter.done():
                    waiter.set_result(completion)
            else:
                # drained before its submitter resumed from the executor;
                # parked until that task claims it (shed ids never enter
                # the batcher, so every unclaimed completion belongs to a
                # submitter still in flight or just abandoned)
                self._orphans[completion.req_id] = completion
        return len(completions)
