"""Async serving gateway: concurrent request fan-in with admission control.

The paper's two-branch model is a handful of tiny matmuls per step, so
fleet-serving cost is dominated by transport and orchestration, not the
forward pass.  :class:`SocGateway` is the transport-side front-end that
regime calls for: an asyncio server surface that accepts ``estimate`` /
``predict`` / ``rollout`` requests *concurrently*, funnels the
request/response kinds through the
:class:`~repro.serve.scheduler.MicroBatcher` (size/deadline coalescing,
one batched engine call per flush, a future per request), and applies
**admission control**:

- at most ``max_in_flight`` requests may be waiting on completions;
- a request arriving beyond that is **shed** — it immediately gets an
  ``ok=False`` :class:`~repro.serve.scheduler.Completion` whose error
  starts with ``"shed:"`` instead of joining an unbounded queue.  A
  full queue that keeps accepting work converts overload into
  unbounded latency for every caller; failing fast keeps the latency
  of admitted requests bounded and gives callers an explicit signal to
  back off (classic load-shed policy).  Rollouts past the limit raise
  :class:`GatewayOverloaded` (they return trajectory dicts, not
  completions).

A background *flusher* task releases deadline-expired batches, so a
lone request is never stranded waiting for batchmates.  Heavy
``rollout`` calls run on the thread-pool executor holding the
batcher's lock; the event loop only ever takes that lock
*non-blocking* — when it is free (normal traffic) submissions and
flushes run inline at full speed, and when a rollout holds it they
fall back to the executor, so a multi-second rollout can never freeze
the loop: it keeps accepting and shedding throughout, and queued
batches flush as soon as the engine frees up.

Per-endpoint accounting (:meth:`SocGateway.stats_dict`) reports
request/ok/error/shed counts, latency percentiles, and sustained
throughput — the numbers the CI soak lane and
``benchmarks/bench_fleet_throughput.py`` gate.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import time
from typing import Callable, Iterable

import numpy as np

from ..core.rollout import RolloutResult
from ..datasets.base import CycleRecord
from .scheduler import Completion, MicroBatcher

__all__ = ["EndpointStats", "GatewayOverloaded", "SocGateway"]

_LATENCY_RESERVOIR = 262_144  # plenty for any soak; bounds gateway memory


class GatewayOverloaded(RuntimeError):
    """A rollout was refused because the gateway is at capacity."""


@dataclasses.dataclass(slots=True)
class EndpointStats:
    """Latency/throughput accounting for one gateway endpoint.

    Slotted like the scheduler's per-request records: ``observe`` runs
    once per completion on the hot path.

    Attributes
    ----------
    requests:
        Requests accepted *or* shed at this endpoint.
    completed:
        Requests that produced a completion (ok or error).
    errors:
        Completions with :attr:`Completion.ok` false (engine-level
        failures; shed requests are counted separately).
    shed:
        Requests refused by admission control.
    """

    requests: int = 0
    completed: int = 0
    errors: int = 0
    shed: int = 0
    latencies_s: list = dataclasses.field(default_factory=list)

    def observe(self, latency_s: float, ok: bool) -> None:
        """Record one completion's end-to-end latency."""
        self.completed += 1
        self.errors += not ok
        if len(self.latencies_s) < _LATENCY_RESERVOIR:
            self.latencies_s.append(latency_s)

    def percentile_ms(self, q: float) -> float:
        """Latency percentile (milliseconds) across observed completions."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q)) * 1e3


class SocGateway:
    """Asyncio front-end over a fleet engine (or sharded fleet).

    Parameters
    ----------
    engine:
        Any object with the :class:`~repro.serve.engine.FleetEngine`
        serving API — a single engine, a
        :class:`~repro.serve.sharding.ShardedFleet` of in-process
        shards, or one backed by
        :class:`~repro.serve.workers.ProcessShardWorker` subprocesses.
    max_batch, max_delay_s:
        Micro-batching knobs, passed to the internal
        :class:`MicroBatcher`.
    max_in_flight:
        Admission limit: requests concurrently awaiting completions
        (estimates, predicts and rollouts all count).  Arrivals beyond
        it are shed.
    clock:
        Monotonic time source (injectable for deterministic tests).

    Use as an async context manager (``async with SocGateway(...)``) so
    the deadline flusher runs; without it, call :meth:`pump`
    explicitly from the serving loop.
    """

    def __init__(
        self,
        engine,
        *,
        max_batch: int = 64,
        max_delay_s: float = 0.010,
        max_in_flight: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.engine = engine
        self.batcher = MicroBatcher(engine, max_batch=max_batch, max_delay_s=max_delay_s, clock=clock)
        self.max_in_flight = max_in_flight
        self.clock = clock
        self.stats: dict[str, EndpointStats] = {
            "estimate": EndpointStats(),
            "predict": EndpointStats(),
            "rollout": EndpointStats(),
        }
        self._started_s = clock()
        self._in_flight = 0
        self._waiters: dict[int, asyncio.Future] = {}
        # completions drained (by another task's executor round-trip)
        # before their submitter registered a waiter — claimed on return
        self._orphans: dict[int, Completion] = {}
        # requests whose submitter was cancelled mid-enqueue; their
        # eventual completions are dropped instead of parked forever
        self._abandoned: set[int] = set()
        self._flusher: asyncio.Task | None = None
        self._next_shed_id = -1  # shed requests never reach the batcher; give them distinct ids

    # -- lifecycle -----------------------------------------------------
    async def __aenter__(self) -> SocGateway:
        self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def start(self) -> None:
        """Start the background deadline flusher (idempotent)."""
        if self._flusher is None or self._flusher.done():
            self._flusher = asyncio.get_running_loop().create_task(self._flush_loop())

    async def stop(self) -> None:
        """Stop the flusher and force out any queued batches.

        Every admitted request is completed before this returns — the
        gateway never strands a waiter on shutdown.  (An admitted
        request may still be crossing the executor when the first
        flush runs, so this drains until no waiter is left.)
        """
        if self._flusher is not None:
            self._flusher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._flusher
            self._flusher = None
        loop = asyncio.get_running_loop()
        self._dispatch(await loop.run_in_executor(None, self.batcher.flush))
        while self._waiters:
            await asyncio.sleep(0)  # let submitters finish registering
            self._dispatch(await loop.run_in_executor(None, self.batcher.flush))

    async def _flush_loop(self) -> None:
        # poll well inside the deadline so a deadline flush fires at most
        # ~25% late; the size trigger needs no polling at all
        interval = max(self.batcher.max_delay_s / 4.0, 0.001)
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval)
            if self.batcher.lock.acquire(blocking=False):
                try:
                    completions = self.batcher.poll()
                finally:
                    self.batcher.lock.release()
                self._dispatch(completions)
            else:
                # a rollout holds the lock; poll on the executor so the
                # flush fires the moment the engine frees up — without
                # blocking the event loop in the meantime.  stop() may
                # cancel this task while the poll blocks, but the thread
                # still drains the outbox — dispatch from a callback that
                # runs regardless of this task's fate, so those
                # completions cannot be lost
                poll_future = loop.run_in_executor(None, self.batcher.poll)
                poll_future.add_done_callback(
                    lambda f: None if f.cancelled() or f.exception() else self._dispatch(f.result())
                )
                await poll_future

    def pump(self) -> int:
        """Synchronously poll the batcher and resolve due completions.

        Returns the number of completions dispatched.  Only for
        gateways running without the flusher task (deterministic
        tests, externally-driven serving loops) — unlike the flusher
        this blocks on the batcher lock, so never call it with a
        rollout in flight.
        """
        return self._dispatch(self.batcher.poll())

    # -- endpoints -----------------------------------------------------
    async def estimate(self, cell_id: str, voltage: float, current: float, temp_c: float) -> Completion:
        """Branch 1 estimate for one cell; resolves when its batch fires."""
        return await self._submit(
            "estimate",
            cell_id,
            lambda: self.batcher.submit_estimate(cell_id, voltage, current, temp_c),
        )

    async def predict(
        self, cell_id: str, current_avg: float, temp_avg_c: float, horizon_s: float
    ) -> Completion:
        """Branch 2 what-if for one cell; resolves when its batch fires."""
        return await self._submit(
            "predict",
            cell_id,
            lambda: self.batcher.submit_predict(cell_id, current_avg, temp_avg_c, horizon_s),
        )

    async def rollout(
        self, assignments: Iterable[tuple[str, CycleRecord]], step_s: float
    ) -> dict[str, RolloutResult]:
        """Fleet rollout on a worker thread; the event loop stays live.

        Raises :class:`GatewayOverloaded` when shed by admission
        control.  The engine call holds the batcher lock, so request
        batches queue (and are shed past ``max_in_flight``) while the
        rollout computes, then flush when the engine frees up.
        """
        stats = self.stats["rollout"]
        stats.requests += 1
        if self._in_flight >= self.max_in_flight:
            stats.shed += 1
            raise GatewayOverloaded(f"shed: gateway at capacity ({self.max_in_flight} requests in flight)")
        self._in_flight += 1
        t_start = self.clock()
        pairs = list(assignments)

        def _run() -> dict[str, RolloutResult]:
            with self.batcher.lock:
                return self.engine.rollout_fleet(pairs, step_s)

        try:
            result = await asyncio.get_running_loop().run_in_executor(None, _run)
        except Exception:
            self._in_flight -= 1
            stats.completed += 1
            stats.errors += 1
            raise
        self._in_flight -= 1
        stats.observe(self.clock() - t_start, ok=True)
        return result

    # -- accounting ----------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Requests currently admitted and awaiting completions."""
        return self._in_flight

    def stats_dict(self) -> dict:
        """Per-endpoint counters, latency percentiles and throughput."""
        elapsed = max(self.clock() - self._started_s, 1e-9)
        report: dict = {"elapsed_s": elapsed}
        for name, ep in self.stats.items():
            report[name] = {
                "requests": ep.requests,
                "completed": ep.completed,
                "ok": ep.completed - ep.errors,
                "errors": ep.errors,
                "shed": ep.shed,
                "p50_ms": ep.percentile_ms(50),
                "p95_ms": ep.percentile_ms(95),
                "p99_ms": ep.percentile_ms(99),
                "req_per_s": ep.completed / elapsed,
            }
        return report

    # ------------------------------------------------------------------
    async def _submit(self, kind: str, cell_id: str, enqueue: Callable[[], int]) -> Completion:
        stats = self.stats[kind]
        stats.requests += 1
        if self._in_flight >= self.max_in_flight:
            stats.shed += 1
            shed_id, self._next_shed_id = self._next_shed_id, self._next_shed_id - 1
            return Completion(
                req_id=shed_id,
                cell_id=cell_id,
                kind=kind,
                value=float("nan"),
                wait_s=0.0,
                batch_size=0,
                error=f"shed: gateway at capacity ({self.max_in_flight} requests in flight)",
            )
        self._in_flight += 1
        t_start = self.clock()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        try:
            # the enqueue takes the batcher lock (and a size trigger runs
            # the engine inline).  Uncontended — the common case — that
            # is microseconds, so do it inline; when a rollout holds the
            # lock for seconds, fall back to the executor rather than
            # blocking the event loop on it
            if self.batcher.lock.acquire(blocking=False):
                try:
                    req_id, ready = enqueue(), self.batcher.drain()
                finally:
                    self.batcher.lock.release()
            else:
                enq_future = loop.run_in_executor(
                    None, lambda: (enqueue(), self.batcher.drain())
                )
                try:
                    # shielded: if the caller is cancelled (a client
                    # timeout) the enqueue still lands on the executor —
                    # mark its request abandoned so the eventual
                    # completion is dropped, not parked forever
                    req_id, ready = await asyncio.shield(enq_future)
                except asyncio.CancelledError:
                    enq_future.add_done_callback(self._abandon_enqueued)
                    raise
            orphan = self._orphans.pop(req_id, None)
            if orphan is not None:
                # another task's drain beat us to our own completion
                future.set_result(orphan)
            else:
                self._waiters[req_id] = future
            # the enqueue may have size-triggered a flush (for this
            # request and/or earlier waiters) — resolve those now
            self._dispatch(ready)
            completion: Completion = await future
        finally:
            self._in_flight -= 1
        stats.observe(self.clock() - t_start, ok=completion.ok)
        return completion

    def _abandon_enqueued(self, future) -> None:
        if future.cancelled() or future.exception():
            return
        req_id, ready = future.result()
        self._waiters.pop(req_id, None)
        if self._orphans.pop(req_id, None) is None:
            self._abandoned.add(req_id)
        self._dispatch(ready)

    def _dispatch(self, completions: list[Completion]) -> int:
        for completion in completions:
            if completion.req_id in self._abandoned:
                self._abandoned.discard(completion.req_id)
                continue
            waiter = self._waiters.pop(completion.req_id, None)
            if waiter is not None:
                if not waiter.done():
                    waiter.set_result(completion)
            else:
                # drained before its submitter resumed from the executor;
                # parked until that task claims it (shed ids never enter
                # the batcher, so every unclaimed completion belongs to a
                # submitter still in flight or just abandoned)
                self._orphans[completion.req_id] = completion
        return len(completions)
