"""Process-backed shard workers: a ``FleetEngine`` in a subprocess.

:class:`~repro.serve.sharding.ShardedFleet` assumes nothing in-process
about its shard workers — placement is a pure hash, the journal
protocol is append-only files, and every worker call goes through the
engine serving API.  :class:`ProcessShardWorker` cashes that in: it
runs a full :class:`~repro.serve.engine.FleetEngine` in a child Python
process and exposes the same duck-typed interface over a
length-prefixed pipe protocol, so
``ShardedFleet(n, worker_factory=...)`` serves an identical fleet with
real OS-process isolation (a crashed shard loses one slice, not the
fleet) and true parallelism for multi-shard rollouts.

Wire protocol (parent <-> child over the child's stdin/stdout pipes;
see :mod:`repro.serve.wire` for the codec)::

    frame   := header body
    header  := 4-byte big-endian unsigned length of body
    body    := pickle of the payload          (v1: control ops)
             | 0xB2 struct header + raw arrays (v2: bulk ops)
    request := (op, args, kwargs)             (v1)
             | V2Frame(kind, meta, arrays)    (v2)
    reply   := ("ok", value) | ("err", exc_type_name, message)
             | V2Frame("ok", meta, arrays)

One reply per request, strictly in order (the parent serializes calls
per worker).  Control traffic (init, registration, state migration,
shutdown) stays pickled — safe here because both ends are the same
codebase on a private pipe — while the bulk inference messages
(``estimate``/``predict``/``rollout_fleet``/``resume_rollout_fleet``)
use **v2 zero-copy frames**: struct header plus raw array bytes,
decoded with ``np.frombuffer`` instead of unpickling, bit-for-bit
identical payloads at a fraction of the serialization cost.  Anything
v2 cannot express (non-JSON cycle tags) falls back to pickle for that
message.  The child's ``sys.stdout`` is rebound to stderr so stray
prints can never corrupt the frame stream.

Failure semantics:

- **crash detection** — a child that dies mid-call surfaces as
  :class:`WorkerCrashError` (with the exit code) on the parent call
  that hit the broken pipe; :attr:`ProcessShardWorker.alive` reports
  liveness between calls.
- **recovery** — give the worker a ``journal_path`` and its engine
  journals every mutation; :meth:`ProcessShardWorker.restart` respawns
  the child, which restores from that journal
  (:meth:`FleetEngine.restore <repro.serve.engine.FleetEngine.restore>`),
  so an interrupted fleet rollout resumes bit-for-bit via
  ``resume_rollout_fleet`` — the same 1e-9 equivalence budget as the
  in-process shards, since the child computes the very same batched
  forwards.
- **graceful drain** — :meth:`ProcessShardWorker.close` sends a
  ``shutdown`` op: the child flushes and closes its journal, replies,
  and exits 0; the parent escalates to ``kill`` only after a grace
  period.

Fault injection for tests: :meth:`ProcessShardWorker.crash_after_window`
arms the child to hard-exit (``os._exit``, no journal close — the
crash being simulated) after committing a given rollout window.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..core.config import ModelConfig
from ..core.model import TwoBranchSoCNet
from ..core.rollout import RolloutResult
from ..datasets.base import CycleRecord
from ..monitor.tracing import activate
from ..monitor.tracing import stage as trace_stage
from . import wire
from .engine import CellState, FleetEngine
from .persistence import StateJournal
from .registry import ModelRegistry

__all__ = ["ProcessShardWorker", "WorkerCrashError", "worker_main"]

# framing lives in repro.serve.wire; these aliases keep the module's
# internal call sites short
_read_frame = wire.read_frame
_write_frame = wire.write_pickle


class WorkerCrashError(RuntimeError):
    """A shard worker subprocess died (or was down) during a call."""


def _write_chunks(stream, chunks) -> None:
    """Write pre-encoded frame chunks (header + raw array buffers)."""
    for chunk in chunks:
        stream.write(chunk)
    stream.flush()


def _wire_col(col) -> np.ndarray:
    """One inference operand as a contiguous 1-D float64 wire payload.

    Scalars ship as a single element — the child engine broadcasts
    them across the batch exactly as the in-process engine would — so
    a fleet-wide constant never crosses the pipe N times.
    """
    array = np.asarray(col, dtype=np.float64)
    if array.ndim == 0:
        array = array.reshape(1)
    return np.ascontiguousarray(array)


# -- model shipping ----------------------------------------------------
def _model_spec(model: TwoBranchSoCNet | None) -> dict | None:
    """Serializable description of a model (config + weights)."""
    if model is None:
        return None
    return {
        "hidden": list(model.config.hidden),
        "horizon_scale_s": float(model.config.horizon_scale_s),
        "state": model.state_dict(),
    }


def _build_model(spec: dict | None) -> TwoBranchSoCNet | None:
    if spec is None:
        return None
    config = ModelConfig(hidden=tuple(spec["hidden"]), horizon_scale_s=spec["horizon_scale_s"])
    model = TwoBranchSoCNet(config, rng=np.random.default_rng(0))
    model.load_state_dict(spec["state"])
    return model


class ProcessShardWorker:
    """One shard worker running a :class:`FleetEngine` in a subprocess.

    Implements the shard-worker interface :class:`ShardedFleet
    <repro.serve.sharding.ShardedFleet>` assumes (``register_cell`` /
    ``estimate`` / ``predict`` / ``rollout_fleet`` / state
    adopt/evict / ``len`` / ``in``), each call one round-trip on the
    wire protocol.

    Parameters
    ----------
    default_model:
        Model shipped to the child at init (weights over the wire).
    registry_root:
        Optional :class:`~repro.serve.registry.ModelRegistry` directory
        the child opens for per-chemistry routing.
    journal_path:
        Optional per-worker :class:`~repro.serve.persistence.StateJournal`
        file.  A restart restores the engine from it (crash recovery);
        without one a restart comes back empty.
    name:
        Label used in error messages and health reports.
    use_kernel:
        Whether the child engine serves through compiled inference
        kernels (default) or the Tensor path (see
        :class:`~repro.serve.engine.FleetEngine`).
    monitor:
        Build the child engine with its own
        :class:`~repro.monitor.metrics.MetricsRegistry` and
        :class:`~repro.monitor.drift.DriftMonitor` (default
        configurations).  The parent reads the registry over the wire
        via :meth:`metrics_snapshot` (the ``metrics`` op), which
        :meth:`ShardedFleet.metrics
        <repro.serve.sharding.ShardedFleet.metrics>` merges across the
        topology; drift/physics-bounds alarms surface in the snapshot
        as ``drift_events_total{kind=...}`` counters.
    trace:
        Enable distributed-tracing support in the child: requests whose
        v2 frame carries trace context (see
        :data:`repro.serve.wire.TRACE_META_KEY`) get
        ``worker.deserialize`` / ``worker.compute`` /
        ``worker.serialize`` child spans recorded in the subprocess and
        shipped back in the reply meta.  Requests without context — the
        common, unsampled case — pay only a dict lookup.
    """

    def __init__(
        self,
        default_model: TwoBranchSoCNet | None = None,
        registry_root: str | Path | None = None,
        journal_path: str | Path | None = None,
        name: str = "shard",
        use_kernel: bool = True,
        monitor: bool = False,
        trace: bool = False,
    ):
        if default_model is None and registry_root is None:
            raise ValueError("need a default model, a registry root, or both")
        self.name = name
        self._spec = {
            "model": _model_spec(default_model),
            "registry_root": None if registry_root is None else str(registry_root),
            "journal_path": None if journal_path is None else str(journal_path),
            "use_kernel": use_kernel,
            "monitor": monitor,
            "trace": trace,
        }
        self._proc: subprocess.Popen | None = None
        self._exit_code: int | None = None
        self.restarts = 0
        self._spawn()

    # -- lifecycle -----------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the child process is currently running."""
        return self._proc is not None and self._proc.poll() is None

    @property
    def durable(self) -> bool:
        """Whether this worker journals its state (restart restores it)."""
        return self._spec["journal_path"] is not None

    @property
    def exit_code(self) -> int | None:
        """Exit code of the last child to die (``None`` while alive)."""
        return self._exit_code

    def restart(self) -> None:
        """Respawn a dead worker, restoring its engine from the journal.

        With a ``journal_path`` the new child replays the journal
        (cells, model routing, in-flight rollout progress) before
        serving; an interrupted ``rollout_fleet`` is then completed
        with :meth:`resume_rollout_fleet`.
        """
        if self.alive:
            raise RuntimeError(f"shard worker {self.name!r} is still running")
        self.restarts += 1
        self._spawn()

    def close(self, grace_s: float = 5.0) -> int | None:
        """Gracefully drain and stop the child; returns its exit code.

        Sends the ``shutdown`` op (the child flushes + closes its
        journal and exits 0), waits up to ``grace_s``, then escalates
        to ``kill``.  Safe to call on a dead or already-closed worker.
        """
        proc = self._proc
        if proc is None:
            return self._exit_code
        if proc.poll() is None:
            try:
                self._call("shutdown")
            except WorkerCrashError:
                pass  # it died before acking; reap below
        if self._proc is not None:
            try:
                self._exit_code = self._proc.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._exit_code = self._proc.wait()
            self._release()
        return self._exit_code

    def __enter__(self) -> ProcessShardWorker:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort: do not leak children
        try:
            if self._proc is not None and self._proc.poll() is None:
                self._proc.kill()
                self._proc.wait()
        except Exception:
            pass

    # -- engine API (one RPC each) --------------------------------------
    def register_cell(
        self, cell_id: str, chemistry: str | None = None, model_name: str | None = None
    ) -> CellState:
        """Register a cell on the worker's engine (see ``FleetEngine``)."""
        return self._call("register_cell", cell_id, chemistry=chemistry, model_name=model_name)

    def deregister_cell(self, cell_id: str) -> CellState:
        """Remove a cell; returns its final state."""
        return self._call("deregister_cell", cell_id)

    def reroute_cell(self, cell_id: str, model_name: str | None = None) -> CellState:
        """Re-resolve a cell's serving model in place."""
        return self._call("reroute_cell", cell_id, model_name=model_name)

    def cell(self, cell_id: str) -> CellState:
        """State record for one registered cell (KeyError when unknown)."""
        return self._call("cell", cell_id)

    def cells(self) -> Iterator[CellState]:
        """Iterate detached copies of all cells' state records."""
        return iter(self._call("cells"))

    def __len__(self) -> int:
        return int(self._call("len"))

    def __contains__(self, cell_id: str) -> bool:
        return bool(self._call("contains", cell_id))

    def estimate(
        self,
        cell_ids: Sequence[str],
        voltage,
        current,
        temp_c,
        now_s: float | None = None,
    ) -> np.ndarray:
        """Batched Branch 1 in the child (see ``FleetEngine.estimate``).

        Ships the batch as a v2 zero-copy frame: one struct header, the
        cell-id blob, and three raw float64 payloads — no pickling.
        """
        ids = list(cell_ids)
        n = len(ids)
        arrays = [_wire_col(col) for col in (voltage, current, temp_c)]
        meta = {"n": n, "now_s": now_s}
        # the wire.request span covers encode + round-trip + decode; its
        # context rides in the frame meta so the child's worker.* spans
        # parent under it (the pickle fallback stays untraced)
        with trace_stage("wire.request", op="estimate") as h:
            if h is not None:
                meta[wire.TRACE_META_KEY] = wire.pack_trace_context(h.ctx)
            try:
                request = wire.encode_v2("estimate", meta, [wire.encode_str_list(ids), *arrays])
            except TypeError:
                return self._call("estimate", ids, voltage, current, temp_c, now_s=now_s)
            reply = self._roundtrip(lambda stream: _write_chunks(stream, request), "estimate")
            if h is not None:
                h.ctx.tracer.absorb(reply.meta.get("spans") or ())
            # copy out of the frame body: callers get writable arrays, as
            # they would from an in-process engine
            return reply.arrays[0].copy()

    def predict(
        self,
        cell_ids: Sequence[str],
        current_avg,
        temp_avg_c,
        horizon_s,
        soc_now=None,
        commit: bool = False,
        now_s: float | None = None,
    ) -> np.ndarray:
        """Batched Branch 2 in the child (see ``FleetEngine.predict``)."""
        ids = list(cell_ids)
        n = len(ids)
        arrays = [_wire_col(col) for col in (current_avg, temp_avg_c, horizon_s)]
        if soc_now is not None:
            arrays.append(_wire_col(soc_now))
        meta = {"n": n, "has_soc": soc_now is not None, "commit": bool(commit), "now_s": now_s}
        with trace_stage("wire.request", op="predict") as h:
            if h is not None:
                meta[wire.TRACE_META_KEY] = wire.pack_trace_context(h.ctx)
            try:
                request = wire.encode_v2("predict", meta, [wire.encode_str_list(ids), *arrays])
            except TypeError:
                return self._call(
                    "predict",
                    ids,
                    current_avg,
                    temp_avg_c,
                    horizon_s,
                    soc_now=soc_now,
                    commit=commit,
                    now_s=now_s,
                )
            reply = self._roundtrip(lambda stream: _write_chunks(stream, request), "predict")
            if h is not None:
                h.ctx.tracer.absorb(reply.meta.get("spans") or ())
            return reply.arrays[0].copy()

    def rollout_fleet(
        self,
        assignments: Iterable[tuple[str, CycleRecord]],
        step_s: float,
        step_hook: Callable[[int], None] | None = None,
    ) -> dict[str, RolloutResult]:
        """Fleet rollout in the child; numerically the in-process result.

        Assignments ship as a v2 frame — deduplicated cycle channel
        arrays plus a JSON pair list — and the reply streams every
        trajectory back as three stacked arrays.  Cycles whose tags are
        not JSON-safe fall back to the pickle frame for that call.
        ``step_hook`` cannot cross the process boundary — use
        :meth:`crash_after_window` for fault injection instead.
        """
        return self._rollout_call("rollout_fleet", assignments, step_s, step_hook)

    def resume_rollout_fleet(
        self,
        assignments: Iterable[tuple[str, CycleRecord]],
        step_s: float,
        step_hook: Callable[[int], None] | None = None,
    ) -> dict[str, RolloutResult]:
        """Finish an interrupted rollout from the worker's journal."""
        return self._rollout_call("resume_rollout_fleet", assignments, step_s, step_hook)

    def _rollout_call(self, op, assignments, step_s, step_hook) -> dict[str, RolloutResult]:
        if step_hook is not None:
            raise ValueError("step_hook cannot cross the process boundary")
        pairs = list(assignments)
        with trace_stage("wire.request", op=op) as h:
            try:
                meta, arrays = wire.encode_rollout_request(pairs, float(step_s))
                if h is not None:
                    meta[wire.TRACE_META_KEY] = wire.pack_trace_context(h.ctx)
                request = wire.encode_v2(op, meta, arrays)
            except TypeError:
                # something in the cycles is not v2-expressible; pickle it
                return self._call(op, pairs, float(step_s))
            reply = self._roundtrip(lambda stream: _write_chunks(stream, request), op)
            if isinstance(reply, wire.V2Frame):
                if h is not None:
                    h.ctx.tracer.absorb(reply.meta.get("spans") or ())
                return wire.decode_rollout_results(reply.meta, reply.arrays)
            return reply

    def metrics_snapshot(self) -> dict | None:
        """The child engine's metrics snapshot (``None`` unless ``monitor``).

        One ``metrics`` round-trip; the snapshot is plain JSON, so it
        merges with other workers' via
        :func:`repro.monitor.metrics.merge_snapshots`.
        """
        return self._call("metrics")

    def _adopt_state(self, state: CellState) -> None:
        """Install a migrating cell's state (rebalance protocol).

        A durable worker journals the adoption, so the migrated cell
        survives a restart of its *new* owner.
        """
        self._call("adopt_state", state)

    def _evict_state(self, cell_id: str) -> CellState:
        """Remove and return a migrating cell's state (rebalance protocol).

        A durable worker journals the drop, so a restart of the *old*
        owner cannot resurrect a cell the hash no longer routes to it.
        """
        return self._call("evict_state", cell_id)

    # -- fault injection -------------------------------------------------
    def crash_after_window(self, window: int) -> None:
        """Arm the child to hard-exit after committing rollout ``window``.

        The child calls ``os._exit`` from the engine's ``step_hook`` —
        after the window's journal records flushed, before any
        shutdown path runs — simulating a mid-rollout process crash.
        """
        self._call("crash_after", int(window))

    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        env = os.environ.copy()
        src_root = str(Path(__file__).resolve().parents[2])
        pythonpath = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not pythonpath else src_root + os.pathsep + pythonpath
        # -c (not -m): runpy would re-execute this module on top of the
        # copy the package __init__ already imported
        bootstrap = "import sys; from repro.serve.workers import worker_main; sys.exit(worker_main())"
        self._proc = subprocess.Popen(
            [sys.executable, "-c", bootstrap],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )
        self._exit_code = None
        self._call("init", self._spec)

    def _release(self) -> None:
        proc, self._proc = self._proc, None
        if proc is not None:
            for stream in (proc.stdin, proc.stdout):
                if stream is not None:
                    try:
                        stream.close()
                    except OSError:
                        pass

    def _call(self, op: str, *args, **kwargs):
        """One pickle-framed round-trip (control ops and fallbacks)."""
        return self._roundtrip(lambda stream: _write_frame(stream, (op, args, kwargs)), op)

    def _roundtrip(self, send: Callable, op: str):
        if self._proc is None:
            raise WorkerCrashError(
                f"shard worker {self.name!r} is not running "
                f"(last exit code {self._exit_code}); call restart()"
            )
        try:
            send(self._proc.stdin)
            reply = _read_frame(self._proc.stdout)
        except (BrokenPipeError, OSError):
            reply = None
        if reply is None:
            self._exit_code = self._proc.wait()
            self._release()
            raise WorkerCrashError(
                f"shard worker {self.name!r} died during {op!r} (exit code {self._exit_code})"
            )
        if isinstance(reply, wire.V2Frame):
            return reply
        if reply[0] == "ok":
            return reply[1]
        _, exc_name, message = reply
        exc_type = {"KeyError": KeyError, "ValueError": ValueError}.get(exc_name, RuntimeError)
        raise exc_type(message)


# -- child side --------------------------------------------------------
def _build_engine(spec: dict) -> FleetEngine:
    model = _build_model(spec["model"])
    registry = None if spec["registry_root"] is None else ModelRegistry(spec["registry_root"])
    use_kernel = spec.get("use_kernel", True)
    metrics = drift = None
    if spec.get("monitor"):
        from ..monitor.drift import DriftMonitor
        from ..monitor.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        drift = DriftMonitor(metrics=metrics)
    kwargs = dict(default_model=model, registry=registry, use_kernel=use_kernel, metrics=metrics, drift=drift)
    journal_path = spec["journal_path"]
    if journal_path is None:
        return FleetEngine(**kwargs)
    journal = StateJournal(journal_path)
    snapshot = journal.snapshot()
    if snapshot.cells or snapshot.windows:
        return FleetEngine.restore(journal, **kwargs)
    return FleetEngine(journal=journal, **kwargs)


def _crash_hook(after_window: int) -> Callable[[int], None]:
    def hook(window: int) -> None:
        if window >= after_window:
            os._exit(86)  # hard crash: skip journal close, atexit, everything

    return hook


def _serve_v2(
    wr, engine: FleetEngine | None, frame: wire.V2Frame, crash_after: int | None, tracer=None
) -> None:
    """Dispatch one bulk (v2-framed) request and write its reply.

    When the frame meta carries trace context and this worker was built
    with ``trace=True``, the child records ``worker.deserialize`` /
    ``worker.compute`` / ``worker.serialize`` spans against the
    propagated trace and ships them back in the reply meta (``"spans"``).
    The serialize span covers reply-payload *assembly* only — the spans
    ride inside the frame, so the frame write itself cannot be timed
    from in here.  Timestamps are ``time.monotonic``, machine-wide on
    Linux, so they align with the parent's spans.
    """
    kind, meta, arrays = frame.kind, frame.meta, frame.arrays
    ctx = None
    if tracer is not None and meta.get(wire.TRACE_META_KEY):
        ctx = tracer.from_wire(meta[wire.TRACE_META_KEY])
    try:
        if engine is None:
            raise RuntimeError(f"worker received {kind!r} before 'init'")
        t0 = time.monotonic()
        if kind == "estimate":
            ids = wire.decode_str_list(arrays[0], meta["n"])
            if ctx is not None:
                tracer.record(ctx, "worker.deserialize", t0, time.monotonic(), op=kind)
            with activate(ctx), trace_stage("worker.compute", op=kind):
                out = engine.estimate(ids, arrays[1], arrays[2], arrays[3], now_s=meta["now_s"])
            reply_meta, reply_arrays = {}, [out]
        elif kind == "predict":
            ids = wire.decode_str_list(arrays[0], meta["n"])
            if ctx is not None:
                tracer.record(ctx, "worker.deserialize", t0, time.monotonic(), op=kind)
            with activate(ctx), trace_stage("worker.compute", op=kind):
                out = engine.predict(
                    ids,
                    arrays[1],
                    arrays[2],
                    arrays[3],
                    soc_now=arrays[4] if meta["has_soc"] else None,
                    commit=meta["commit"],
                    now_s=meta["now_s"],
                )
            reply_meta, reply_arrays = {}, [out]
        elif kind in ("rollout_fleet", "resume_rollout_fleet"):
            pairs, step_s = wire.decode_rollout_request(meta, arrays)
            if ctx is not None:
                tracer.record(ctx, "worker.deserialize", t0, time.monotonic(), op=kind)
            hook = None if crash_after is None else _crash_hook(crash_after)
            with activate(ctx), trace_stage("worker.compute", op=kind):
                results = getattr(engine, kind)(pairs, step_s, step_hook=hook)
            t_ser = time.monotonic()
            reply_meta, reply_arrays = wire.encode_rollout_results(results)
            if ctx is not None:
                tracer.record(ctx, "worker.serialize", t_ser, time.monotonic(), op=kind)
        else:
            raise RuntimeError(f"unknown v2 op {kind!r}")
        if ctx is not None:
            if kind in ("estimate", "predict"):
                # zero-copy replies have no assembly step; the span marks
                # the (empty) serialize stage so trees stay uniform
                tracer.record(ctx, "worker.serialize", time.monotonic(), time.monotonic(), op=kind)
            reply_meta["spans"] = tracer.drain(ctx.trace_id)
        wire.write_v2(wr, "ok", reply_meta, reply_arrays)
    except Exception as exc:  # engine errors travel the wire, not the process
        if ctx is not None:
            tracer.drain(ctx.trace_id)  # discard: never leak a live buffer on errors
        _write_frame(wr, ("err", type(exc).__name__, str(exc)))


def worker_main(stdin=None, stdout=None) -> int:
    """Child-process serving loop: read frames, dispatch, reply.

    Runs until the parent closes the pipe (implicit drain) or sends the
    ``shutdown`` op (explicit drain: journal closed, reply sent, exit
    0).  Exposed as ``python -m repro.serve.workers``.
    """
    rd = stdin if stdin is not None else sys.stdin.buffer
    wr = stdout if stdout is not None else sys.stdout.buffer
    sys.stdout = sys.stderr  # stray prints must not corrupt the frame stream
    engine: FleetEngine | None = None
    crash_after: int | None = None
    tracer = None
    while True:
        frame = _read_frame(rd)
        if frame is None:
            if engine is not None and engine.journal is not None:
                engine.journal.close()
            return 0
        if isinstance(frame, wire.V2Frame):
            _serve_v2(wr, engine, frame, crash_after, tracer)
            continue
        op, args, kwargs = frame
        try:
            if op == "init":
                engine = _build_engine(args[0])
                if args[0].get("trace"):
                    from ..monitor.tracing import SpanTracer

                    # recorder only: no head sampling, no metrics — the
                    # parent commits traces and owns the rollup
                    tracer = SpanTracer(sample_rate=0.0, service="worker")
                result = "ready"
            elif op == "shutdown":
                if engine is not None and engine.journal is not None:
                    engine.journal.close()
                _write_frame(wr, ("ok", "bye"))
                return 0
            elif op == "ping":
                result = "pong"
            elif op == "metrics":
                result = None if engine is None else engine.metrics_snapshot()
            elif op == "crash_after":
                crash_after = int(args[0])
                result = crash_after
            elif engine is None:
                raise RuntimeError(f"worker received {op!r} before 'init'")
            elif op in ("rollout_fleet", "resume_rollout_fleet"):
                hook = None if crash_after is None else _crash_hook(crash_after)
                result = getattr(engine, op)(args[0], args[1], step_hook=hook)
            elif op == "cells":
                result = [dataclasses.replace(state) for state in engine.cells()]
            elif op == "len":
                result = len(engine)
            elif op == "contains":
                result = args[0] in engine
            elif op == "adopt_state":
                # unlike in-process shards (whose shared journal already
                # holds the record), this worker's own journal must learn
                # about cells migrating in — or a restart would lose them
                engine._adopt_state(args[0])
                if engine.journal is not None:
                    engine.journal.append_cell(args[0])
                result = None
            elif op == "evict_state":
                result = engine._evict_state(args[0])
                if engine.journal is not None:
                    engine.journal.drop_cell(args[0])
            elif op in (
                "register_cell",
                "deregister_cell",
                "reroute_cell",
                "cell",
                "estimate",
                "predict",
            ):
                result = getattr(engine, op)(*args, **kwargs)
            else:
                raise RuntimeError(f"unknown op {op!r}")
        except Exception as exc:  # engine errors travel the wire, not the process
            _write_frame(wr, ("err", type(exc).__name__, str(exc)))
        else:
            _write_frame(wr, ("ok", result))


if __name__ == "__main__":
    sys.exit(worker_main())
