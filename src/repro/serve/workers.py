"""Process-backed shard workers: a ``FleetEngine`` in a subprocess.

:class:`~repro.serve.sharding.ShardedFleet` assumes nothing in-process
about its shard workers — placement is a pure hash, the journal
protocol is append-only files, and every worker call goes through the
engine serving API.  :class:`ProcessShardWorker` cashes that in: it
runs a full :class:`~repro.serve.engine.FleetEngine` in a child Python
process and exposes the same duck-typed interface over a
length-prefixed pipe protocol, so
``ShardedFleet(n, worker_factory=...)`` serves an identical fleet with
real OS-process isolation (a crashed shard loses one slice, not the
fleet) and true parallelism for multi-shard rollouts.

Wire protocol (parent <-> child over the child's stdin/stdout pipes)::

    frame   := header body
    header  := 4-byte big-endian unsigned length of body
    body    := pickle of the payload
    request := (op, args, kwargs)
    reply   := ("ok", value) | ("err", exc_type_name, message)

One reply per request, strictly in order (the parent serializes calls
per worker).  Pickle is safe here because both ends are the same
codebase on a private pipe — this is an IPC framing, not a public
network protocol.  The child's ``sys.stdout`` is rebound to stderr so
stray prints can never corrupt the frame stream.

Failure semantics:

- **crash detection** — a child that dies mid-call surfaces as
  :class:`WorkerCrashError` (with the exit code) on the parent call
  that hit the broken pipe; :attr:`ProcessShardWorker.alive` reports
  liveness between calls.
- **recovery** — give the worker a ``journal_path`` and its engine
  journals every mutation; :meth:`ProcessShardWorker.restart` respawns
  the child, which restores from that journal
  (:meth:`FleetEngine.restore <repro.serve.engine.FleetEngine.restore>`),
  so an interrupted fleet rollout resumes bit-for-bit via
  ``resume_rollout_fleet`` — the same 1e-9 equivalence budget as the
  in-process shards, since the child computes the very same batched
  forwards.
- **graceful drain** — :meth:`ProcessShardWorker.close` sends a
  ``shutdown`` op: the child flushes and closes its journal, replies,
  and exits 0; the parent escalates to ``kill`` only after a grace
  period.

Fault injection for tests: :meth:`ProcessShardWorker.crash_after_window`
arms the child to hard-exit (``os._exit``, no journal close — the
crash being simulated) after committing a given rollout window.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import struct
import subprocess
import sys
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..core.config import ModelConfig
from ..core.model import TwoBranchSoCNet
from ..core.rollout import RolloutResult
from ..datasets.base import CycleRecord
from .engine import CellState, FleetEngine
from .persistence import StateJournal
from .registry import ModelRegistry

__all__ = ["ProcessShardWorker", "WorkerCrashError", "worker_main"]

_HEADER = struct.Struct(">I")


class WorkerCrashError(RuntimeError):
    """A shard worker subprocess died (or was down) during a call."""


# -- framing -----------------------------------------------------------
def _read_exact(stream, n: int) -> bytes | None:
    chunks = []
    while n:
        chunk = stream.read(n)
        if not chunk:
            return None  # EOF (possibly mid-frame: the peer died)
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _read_frame(stream):
    header = _read_exact(stream, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    body = _read_exact(stream, length)
    if body is None:
        return None
    return pickle.loads(body)


def _write_frame(stream, payload) -> None:
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(_HEADER.pack(len(body)) + body)
    stream.flush()


# -- model shipping ----------------------------------------------------
def _model_spec(model: TwoBranchSoCNet | None) -> dict | None:
    """Serializable description of a model (config + weights)."""
    if model is None:
        return None
    return {
        "hidden": list(model.config.hidden),
        "horizon_scale_s": float(model.config.horizon_scale_s),
        "state": model.state_dict(),
    }


def _build_model(spec: dict | None) -> TwoBranchSoCNet | None:
    if spec is None:
        return None
    config = ModelConfig(hidden=tuple(spec["hidden"]), horizon_scale_s=spec["horizon_scale_s"])
    model = TwoBranchSoCNet(config, rng=np.random.default_rng(0))
    model.load_state_dict(spec["state"])
    return model


class ProcessShardWorker:
    """One shard worker running a :class:`FleetEngine` in a subprocess.

    Implements the shard-worker interface :class:`ShardedFleet
    <repro.serve.sharding.ShardedFleet>` assumes (``register_cell`` /
    ``estimate`` / ``predict`` / ``rollout_fleet`` / state
    adopt/evict / ``len`` / ``in``), each call one round-trip on the
    wire protocol.

    Parameters
    ----------
    default_model:
        Model shipped to the child at init (weights over the wire).
    registry_root:
        Optional :class:`~repro.serve.registry.ModelRegistry` directory
        the child opens for per-chemistry routing.
    journal_path:
        Optional per-worker :class:`~repro.serve.persistence.StateJournal`
        file.  A restart restores the engine from it (crash recovery);
        without one a restart comes back empty.
    name:
        Label used in error messages and health reports.
    """

    def __init__(
        self,
        default_model: TwoBranchSoCNet | None = None,
        registry_root: str | Path | None = None,
        journal_path: str | Path | None = None,
        name: str = "shard",
    ):
        if default_model is None and registry_root is None:
            raise ValueError("need a default model, a registry root, or both")
        self.name = name
        self._spec = {
            "model": _model_spec(default_model),
            "registry_root": None if registry_root is None else str(registry_root),
            "journal_path": None if journal_path is None else str(journal_path),
        }
        self._proc: subprocess.Popen | None = None
        self._exit_code: int | None = None
        self.restarts = 0
        self._spawn()

    # -- lifecycle -----------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the child process is currently running."""
        return self._proc is not None and self._proc.poll() is None

    @property
    def durable(self) -> bool:
        """Whether this worker journals its state (restart restores it)."""
        return self._spec["journal_path"] is not None

    @property
    def exit_code(self) -> int | None:
        """Exit code of the last child to die (``None`` while alive)."""
        return self._exit_code

    def restart(self) -> None:
        """Respawn a dead worker, restoring its engine from the journal.

        With a ``journal_path`` the new child replays the journal
        (cells, model routing, in-flight rollout progress) before
        serving; an interrupted ``rollout_fleet`` is then completed
        with :meth:`resume_rollout_fleet`.
        """
        if self.alive:
            raise RuntimeError(f"shard worker {self.name!r} is still running")
        self.restarts += 1
        self._spawn()

    def close(self, grace_s: float = 5.0) -> int | None:
        """Gracefully drain and stop the child; returns its exit code.

        Sends the ``shutdown`` op (the child flushes + closes its
        journal and exits 0), waits up to ``grace_s``, then escalates
        to ``kill``.  Safe to call on a dead or already-closed worker.
        """
        proc = self._proc
        if proc is None:
            return self._exit_code
        if proc.poll() is None:
            try:
                self._call("shutdown")
            except WorkerCrashError:
                pass  # it died before acking; reap below
        if self._proc is not None:
            try:
                self._exit_code = self._proc.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._exit_code = self._proc.wait()
            self._release()
        return self._exit_code

    def __enter__(self) -> ProcessShardWorker:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort: do not leak children
        try:
            if self._proc is not None and self._proc.poll() is None:
                self._proc.kill()
                self._proc.wait()
        except Exception:
            pass

    # -- engine API (one RPC each) --------------------------------------
    def register_cell(
        self, cell_id: str, chemistry: str | None = None, model_name: str | None = None
    ) -> CellState:
        """Register a cell on the worker's engine (see ``FleetEngine``)."""
        return self._call("register_cell", cell_id, chemistry=chemistry, model_name=model_name)

    def deregister_cell(self, cell_id: str) -> CellState:
        """Remove a cell; returns its final state."""
        return self._call("deregister_cell", cell_id)

    def reroute_cell(self, cell_id: str, model_name: str | None = None) -> CellState:
        """Re-resolve a cell's serving model in place."""
        return self._call("reroute_cell", cell_id, model_name=model_name)

    def cell(self, cell_id: str) -> CellState:
        """State record for one registered cell (KeyError when unknown)."""
        return self._call("cell", cell_id)

    def cells(self) -> Iterator[CellState]:
        """Iterate detached copies of all cells' state records."""
        return iter(self._call("cells"))

    def __len__(self) -> int:
        return int(self._call("len"))

    def __contains__(self, cell_id: str) -> bool:
        return bool(self._call("contains", cell_id))

    def estimate(
        self,
        cell_ids: Sequence[str],
        voltage,
        current,
        temp_c,
        now_s: float | None = None,
    ) -> np.ndarray:
        """Batched Branch 1 in the child (see ``FleetEngine.estimate``)."""
        return self._call("estimate", list(cell_ids), voltage, current, temp_c, now_s=now_s)

    def predict(
        self,
        cell_ids: Sequence[str],
        current_avg,
        temp_avg_c,
        horizon_s,
        soc_now=None,
        commit: bool = False,
        now_s: float | None = None,
    ) -> np.ndarray:
        """Batched Branch 2 in the child (see ``FleetEngine.predict``)."""
        return self._call(
            "predict",
            list(cell_ids),
            current_avg,
            temp_avg_c,
            horizon_s,
            soc_now=soc_now,
            commit=commit,
            now_s=now_s,
        )

    def rollout_fleet(
        self,
        assignments: Iterable[tuple[str, CycleRecord]],
        step_s: float,
        step_hook: Callable[[int], None] | None = None,
    ) -> dict[str, RolloutResult]:
        """Fleet rollout in the child; numerically the in-process result.

        ``step_hook`` cannot cross the process boundary — use
        :meth:`crash_after_window` for fault injection instead.
        """
        if step_hook is not None:
            raise ValueError("step_hook cannot cross the process boundary")
        return self._call("rollout_fleet", list(assignments), float(step_s))

    def resume_rollout_fleet(
        self,
        assignments: Iterable[tuple[str, CycleRecord]],
        step_s: float,
        step_hook: Callable[[int], None] | None = None,
    ) -> dict[str, RolloutResult]:
        """Finish an interrupted rollout from the worker's journal."""
        if step_hook is not None:
            raise ValueError("step_hook cannot cross the process boundary")
        return self._call("resume_rollout_fleet", list(assignments), float(step_s))

    def _adopt_state(self, state: CellState) -> None:
        """Install a migrating cell's state (rebalance protocol).

        A durable worker journals the adoption, so the migrated cell
        survives a restart of its *new* owner.
        """
        self._call("adopt_state", state)

    def _evict_state(self, cell_id: str) -> CellState:
        """Remove and return a migrating cell's state (rebalance protocol).

        A durable worker journals the drop, so a restart of the *old*
        owner cannot resurrect a cell the hash no longer routes to it.
        """
        return self._call("evict_state", cell_id)

    # -- fault injection -------------------------------------------------
    def crash_after_window(self, window: int) -> None:
        """Arm the child to hard-exit after committing rollout ``window``.

        The child calls ``os._exit`` from the engine's ``step_hook`` —
        after the window's journal records flushed, before any
        shutdown path runs — simulating a mid-rollout process crash.
        """
        self._call("crash_after", int(window))

    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        env = os.environ.copy()
        src_root = str(Path(__file__).resolve().parents[2])
        pythonpath = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not pythonpath else src_root + os.pathsep + pythonpath
        # -c (not -m): runpy would re-execute this module on top of the
        # copy the package __init__ already imported
        bootstrap = "import sys; from repro.serve.workers import worker_main; sys.exit(worker_main())"
        self._proc = subprocess.Popen(
            [sys.executable, "-c", bootstrap],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )
        self._exit_code = None
        self._call("init", self._spec)

    def _release(self) -> None:
        proc, self._proc = self._proc, None
        if proc is not None:
            for stream in (proc.stdin, proc.stdout):
                if stream is not None:
                    try:
                        stream.close()
                    except OSError:
                        pass

    def _call(self, op: str, *args, **kwargs):
        if self._proc is None:
            raise WorkerCrashError(
                f"shard worker {self.name!r} is not running "
                f"(last exit code {self._exit_code}); call restart()"
            )
        try:
            _write_frame(self._proc.stdin, (op, args, kwargs))
            reply = _read_frame(self._proc.stdout)
        except (BrokenPipeError, OSError):
            reply = None
        if reply is None:
            self._exit_code = self._proc.wait()
            self._release()
            raise WorkerCrashError(
                f"shard worker {self.name!r} died during {op!r} (exit code {self._exit_code})"
            )
        if reply[0] == "ok":
            return reply[1]
        _, exc_name, message = reply
        exc_type = {"KeyError": KeyError, "ValueError": ValueError}.get(exc_name, RuntimeError)
        raise exc_type(message)


# -- child side --------------------------------------------------------
def _build_engine(spec: dict) -> FleetEngine:
    model = _build_model(spec["model"])
    registry = None if spec["registry_root"] is None else ModelRegistry(spec["registry_root"])
    journal_path = spec["journal_path"]
    if journal_path is None:
        return FleetEngine(default_model=model, registry=registry)
    journal = StateJournal(journal_path)
    snapshot = journal.snapshot()
    if snapshot.cells or snapshot.windows:
        return FleetEngine.restore(journal, default_model=model, registry=registry)
    return FleetEngine(default_model=model, registry=registry, journal=journal)


def _crash_hook(after_window: int) -> Callable[[int], None]:
    def hook(window: int) -> None:
        if window >= after_window:
            os._exit(86)  # hard crash: skip journal close, atexit, everything

    return hook


def worker_main(stdin=None, stdout=None) -> int:
    """Child-process serving loop: read frames, dispatch, reply.

    Runs until the parent closes the pipe (implicit drain) or sends the
    ``shutdown`` op (explicit drain: journal closed, reply sent, exit
    0).  Exposed as ``python -m repro.serve.workers``.
    """
    rd = stdin if stdin is not None else sys.stdin.buffer
    wr = stdout if stdout is not None else sys.stdout.buffer
    sys.stdout = sys.stderr  # stray prints must not corrupt the frame stream
    engine: FleetEngine | None = None
    crash_after: int | None = None
    while True:
        frame = _read_frame(rd)
        if frame is None:
            if engine is not None and engine.journal is not None:
                engine.journal.close()
            return 0
        op, args, kwargs = frame
        try:
            if op == "init":
                engine = _build_engine(args[0])
                result = "ready"
            elif op == "shutdown":
                if engine is not None and engine.journal is not None:
                    engine.journal.close()
                _write_frame(wr, ("ok", "bye"))
                return 0
            elif op == "ping":
                result = "pong"
            elif op == "crash_after":
                crash_after = int(args[0])
                result = crash_after
            elif engine is None:
                raise RuntimeError(f"worker received {op!r} before 'init'")
            elif op in ("rollout_fleet", "resume_rollout_fleet"):
                hook = None if crash_after is None else _crash_hook(crash_after)
                result = getattr(engine, op)(args[0], args[1], step_hook=hook)
            elif op == "cells":
                result = [dataclasses.replace(state) for state in engine.cells()]
            elif op == "len":
                result = len(engine)
            elif op == "contains":
                result = args[0] in engine
            elif op == "adopt_state":
                # unlike in-process shards (whose shared journal already
                # holds the record), this worker's own journal must learn
                # about cells migrating in — or a restart would lose them
                engine._adopt_state(args[0])
                if engine.journal is not None:
                    engine.journal.append_cell(args[0])
                result = None
            elif op == "evict_state":
                result = engine._evict_state(args[0])
                if engine.journal is not None:
                    engine.journal.drop_cell(args[0])
            elif op in (
                "register_cell",
                "deregister_cell",
                "reroute_cell",
                "cell",
                "estimate",
                "predict",
            ):
                result = getattr(engine, op)(*args, **kwargs)
            else:
                raise RuntimeError(f"unknown op {op!r}")
        except Exception as exc:  # engine errors travel the wire, not the process
            _write_frame(wr, ("err", type(exc).__name__, str(exc)))
        else:
            _write_frame(wr, ("ok", result))


if __name__ == "__main__":
    sys.exit(worker_main())
