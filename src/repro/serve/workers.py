"""Shard workers behind the :class:`~repro.serve.transport.Transport` seam.

:class:`~repro.serve.sharding.ShardedFleet` assumes nothing in-process
about its shard workers — placement is a pure hash, the journal
protocol is append-only files, and every worker call goes through the
engine serving API.  The worker classes here cash that in: a full
:class:`~repro.serve.engine.FleetEngine` runs behind the same
duck-typed interface over the length-prefixed frame protocol
(:mod:`repro.serve.wire`), carried by any
:class:`~repro.serve.transport.Transport`:

- :class:`ProcessShardWorker` — the local fast path: a child process
  over its stdin/stdout pipes (``pipe://``), crash detection backed by
  ``waitpid`` exit codes.  With ``shm=True`` (``shm://``) the pipes
  keep carrying frames but bulk array payloads move through a pair of
  :class:`~repro.serve.transport.ShmRing` shared-memory rings — the
  parent creates them at spawn, ships their paths in the ``init``
  spec, and unlinks them at release;
- :class:`RemoteShardWorker` — the same protocol over a Unix or TCP
  socket (``unix:///path``, ``tcp://host:port``): a worker on another
  host, or a locally ``spawn``-ed standalone process.  No ``waitpid``
  here — peer death surfaces in-band (torn stream, reset) or via the
  :meth:`~RemoteShardWorker.check_alive` ping heartbeat;
- :class:`WorkerSpec` — the single declarative description both
  resolve from (and the in-process engine too):
  ``WorkerSpec(url=...).resolve(k)`` is the one worker factory
  :class:`ShardedFleet <repro.serve.sharding.ShardedFleet>` uses.

Wire protocol (one reply per request, strictly in order; see
:mod:`repro.serve.wire` for the codec)::

    frame   := header body
    header  := 4-byte big-endian unsigned length of body
    body    := pickle of the payload          (v1: control ops)
             | 0xB2 struct header + raw arrays (v2: bulk ops)
    request := (op, args, kwargs)             (v1)
             | V2Frame(kind, meta, arrays)    (v2)
    reply   := ("ok", value) | ("err", exc_type_name, message)
             | V2Frame("ok", meta, arrays)

Control traffic (init, registration, state migration, shutdown) stays
pickled — both ends are the same codebase on a private link — while
the bulk inference messages (``estimate``/``predict``/
``rollout_fleet``/``resume_rollout_fleet``) use **v2 zero-copy
frames**: struct header plus raw array bytes, decoded with
``np.frombuffer`` instead of unpickling.  Anything v2 cannot express
(non-JSON cycle tags) falls back to pickle for that message.  The
serving side is :class:`WorkerEndpoint` — the dispatch loop
``worker_main`` (pipes) and :func:`run_worker` (socket listener, the
``repro-soc worker`` entry point) both run.

Failure semantics:

- **crash detection** — a peer that dies mid-call surfaces as
  :class:`WorkerCrashError` on the call that hit the dead link (with
  the exit code when the worker was locally spawned); ``alive``
  reports cached liveness between calls, and
  :meth:`RemoteShardWorker.check_alive` actively probes a silent
  remote peer with a deadline-bounded ping.
- **recovery** — give the worker a journal and its engine journals
  every mutation; ``restart()`` respawns (or redials) the worker,
  which restores from that journal, so an interrupted fleet rollout
  resumes bit-for-bit via ``resume_rollout_fleet`` — the same 1e-9
  equivalence budget as the in-process shards, over any transport.
- **graceful drain** — ``close()`` sends a ``shutdown`` op: the
  worker flushes and closes its journal, replies, and exits 0; a
  spawning parent escalates to ``kill`` only after a grace period.

Fault injection for tests: ``crash_after_window`` arms the worker to
hard-exit (``os._exit``, no journal close — the crash being
simulated) after committing a given rollout window.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..core.config import ModelConfig
from ..core.model import TwoBranchSoCNet
from ..core.rollout import RolloutResult
from ..datasets.base import CycleRecord
from ..monitor.tracing import activate
from ..monitor.tracing import stage as trace_stage
from . import wire
from .engine import CellState, FleetEngine
from .persistence import StateJournal
from .registry import ModelRegistry
from .transport import (
    DEFAULT_SHM_SLAB_BYTES,
    DEFAULT_SHM_SLOTS,
    PipeTransport,
    ShmRing,
    Transport,
    TransportError,
    TransportListener,
    connect,
    parse_url,
    shm_ring_dir,
)

__all__ = [
    "ProcessShardWorker",
    "RemoteShardWorker",
    "WorkerCrashError",
    "WorkerEndpoint",
    "WorkerSpec",
    "run_worker",
    "run_worker_connect",
    "worker_main",
]


class WorkerCrashError(RuntimeError):
    """A shard worker process died (or its link dropped) during a call."""


def _wire_col(col) -> np.ndarray:
    """One inference operand as a contiguous 1-D float wire payload.

    Scalars ship as a single element — the remote engine broadcasts
    them across the batch exactly as the in-process engine would — so
    a fleet-wide constant never crosses the wire N times.  ``float32``
    arrays keep their dtype (the v2 codec is dtype-faithful, and a
    silent float64 upcast would re-copy the bandwidth the tiered
    serving mode saves); everything else is normalized to float64.
    """
    array = np.asarray(col)
    if array.dtype != np.float32:
        array = np.asarray(array, dtype=np.float64)
    if array.ndim == 0:
        array = array.reshape(1)
    return np.ascontiguousarray(array)


# -- model shipping ----------------------------------------------------
def _model_spec(model: TwoBranchSoCNet | None) -> dict | None:
    """Serializable description of a model (config + weights)."""
    if model is None:
        return None
    return {
        "hidden": list(model.config.hidden),
        "horizon_scale_s": float(model.config.horizon_scale_s),
        "state": model.state_dict(),
    }


def _build_model(spec: dict | None) -> TwoBranchSoCNet | None:
    if spec is None:
        return None
    config = ModelConfig(hidden=tuple(spec["hidden"]), horizon_scale_s=spec["horizon_scale_s"])
    model = TwoBranchSoCNet(config, rng=np.random.default_rng(0))
    model.load_state_dict(spec["state"])
    return model


def _engine_spec(
    default_model: TwoBranchSoCNet | None,
    registry_root: str | Path | None,
    journal_path: str | Path | None,
    use_kernel: bool,
    monitor: bool,
    trace: bool,
    archive_root: str | Path | None = None,
    journal_segment_bytes: int = 0,
    drift_from_registry: bool = False,
    dtype=None,
) -> dict:
    """The picklable ``init`` payload a worker builds its engine from."""
    if default_model is None and registry_root is None:
        raise ValueError("need a default model, a registry root, or both")
    if drift_from_registry and registry_root is None:
        raise ValueError("drift_from_registry needs a registry root to resolve specs from")
    return {
        "model": _model_spec(default_model),
        "registry_root": None if registry_root is None else str(registry_root),
        "journal_path": None if journal_path is None else str(journal_path),
        "use_kernel": use_kernel,
        "monitor": monitor,
        "trace": trace,
        "archive_root": None if archive_root is None else str(archive_root),
        "journal_segment_bytes": int(journal_segment_bytes),
        "drift_from_registry": bool(drift_from_registry),
        # dtype ships as a name string so the spec stays plain JSON-able
        "dtype": str(np.dtype(dtype).name) if dtype is not None else "float64",
    }


class _WorkerClient:
    """Shared client half of the worker protocol over a :class:`Transport`.

    Subclasses own the connection lifecycle (spawn/dial/reap) through
    two hooks: ``self._transport`` (the live transport, or ``None``
    while down) and :meth:`_transport_failed`, which turns a dead link
    into the :class:`WorkerCrashError` the caller sees.  Everything
    else — the engine RPC surface, v2 zero-copy encoding, trace
    propagation — lives here once, identical over pipes and sockets.
    """

    name: str = "shard"
    _transport: Transport | None = None
    _call_timeout_s: float | None = None

    # -- connection hooks (subclass responsibility) --------------------
    def _down_message(self, op: str) -> str:
        return f"shard worker {self.name!r} is not running; call restart()"

    def _transport_failed(self, op: str, exc: Exception) -> WorkerCrashError:
        """Mark the link dead and describe the failure (for raising)."""
        raise NotImplementedError

    # -- engine API (one RPC each) --------------------------------------
    def register_cell(
        self, cell_id: str, chemistry: str | None = None, model_name: str | None = None
    ) -> CellState:
        """Register a cell on the worker's engine (see ``FleetEngine``)."""
        return self._call("register_cell", cell_id, chemistry=chemistry, model_name=model_name)

    def deregister_cell(self, cell_id: str) -> CellState:
        """Remove a cell; returns its final state."""
        return self._call("deregister_cell", cell_id)

    def reroute_cell(self, cell_id: str, model_name: str | None = None) -> CellState:
        """Re-resolve a cell's serving model in place."""
        return self._call("reroute_cell", cell_id, model_name=model_name)

    def cell(self, cell_id: str) -> CellState:
        """State record for one registered cell (KeyError when unknown)."""
        return self._call("cell", cell_id)

    def cells(self) -> Iterator[CellState]:
        """Iterate detached copies of all cells' state records."""
        return iter(self._call("cells"))

    def __len__(self) -> int:
        return int(self._call("len"))

    def __contains__(self, cell_id: str) -> bool:
        return bool(self._call("contains", cell_id))

    def estimate(
        self,
        cell_ids: Sequence[str],
        voltage,
        current,
        temp_c,
        now_s: float | None = None,
    ) -> np.ndarray:
        """Batched Branch 1 on the worker (see ``FleetEngine.estimate``).

        Ships the batch as a v2 zero-copy frame: one struct header, the
        cell-id blob, and three raw float payloads — no pickling.  Over
        an shm transport the payloads ride the shared-memory ring
        (:meth:`Transport.send_v2 <repro.serve.transport.Transport.send_v2>`).
        """
        ids = list(cell_ids)
        n = len(ids)
        meta = {"n": n, "now_s": now_s}
        # the wire.request span covers encode + round-trip + decode; its
        # context rides in the frame meta so the worker's worker.* spans
        # parent under it (the pickle fallback stays untraced)
        with trace_stage("wire.request", op="estimate") as h:
            if h is not None:
                meta[wire.TRACE_META_KEY] = wire.pack_trace_context(h.ctx)
            try:
                payload = [wire.encode_str_list(ids), *(_wire_col(col) for col in (voltage, current, temp_c))]
                reply = self._roundtrip(lambda t: t.send_v2("estimate", meta, payload), "estimate")
            except TypeError:
                return self._call("estimate", ids, voltage, current, temp_c, now_s=now_s)
            if h is not None:
                h.ctx.tracer.absorb(reply.meta.get("spans") or ())
            # copy out of the frame body: callers get writable arrays, as
            # they would from an in-process engine
            return reply.arrays[0].copy()

    def predict(
        self,
        cell_ids: Sequence[str],
        current_avg,
        temp_avg_c,
        horizon_s,
        soc_now=None,
        commit: bool = False,
        now_s: float | None = None,
    ) -> np.ndarray:
        """Batched Branch 2 on the worker (see ``FleetEngine.predict``)."""
        ids = list(cell_ids)
        n = len(ids)
        meta = {"n": n, "has_soc": soc_now is not None, "commit": bool(commit), "now_s": now_s}
        with trace_stage("wire.request", op="predict") as h:
            if h is not None:
                meta[wire.TRACE_META_KEY] = wire.pack_trace_context(h.ctx)
            try:
                arrays = [_wire_col(col) for col in (current_avg, temp_avg_c, horizon_s)]
                if soc_now is not None:
                    arrays.append(_wire_col(soc_now))
                payload = [wire.encode_str_list(ids), *arrays]
                reply = self._roundtrip(lambda t: t.send_v2("predict", meta, payload), "predict")
            except TypeError:
                return self._call(
                    "predict",
                    ids,
                    current_avg,
                    temp_avg_c,
                    horizon_s,
                    soc_now=soc_now,
                    commit=commit,
                    now_s=now_s,
                )
            if h is not None:
                h.ctx.tracer.absorb(reply.meta.get("spans") or ())
            return reply.arrays[0].copy()

    def rollout_fleet(
        self,
        assignments: Iterable[tuple[str, CycleRecord]],
        step_s: float,
        step_hook: Callable[[int], None] | None = None,
    ) -> dict[str, RolloutResult]:
        """Fleet rollout on the worker; numerically the in-process result.

        Assignments ship as a v2 frame — deduplicated cycle channel
        arrays plus a JSON pair list — and the reply streams every
        trajectory back as three stacked arrays.  Cycles whose tags are
        not JSON-safe fall back to the pickle frame for that call.
        ``step_hook`` cannot cross the process boundary — use
        :meth:`crash_after_window` for fault injection instead.
        """
        return self._rollout_call("rollout_fleet", assignments, step_s, step_hook)

    def resume_rollout_fleet(
        self,
        assignments: Iterable[tuple[str, CycleRecord]],
        step_s: float,
        step_hook: Callable[[int], None] | None = None,
    ) -> dict[str, RolloutResult]:
        """Finish an interrupted rollout from the worker's journal."""
        return self._rollout_call("resume_rollout_fleet", assignments, step_s, step_hook)

    def _rollout_call(self, op, assignments, step_s, step_hook) -> dict[str, RolloutResult]:
        if step_hook is not None:
            raise ValueError("step_hook cannot cross the process boundary")
        pairs = list(assignments)
        with trace_stage("wire.request", op=op) as h:
            try:
                meta, arrays = wire.encode_rollout_request(pairs, float(step_s))
                if h is not None:
                    meta[wire.TRACE_META_KEY] = wire.pack_trace_context(h.ctx)
                reply = self._roundtrip(lambda t: t.send_v2(op, meta, arrays), op)
            except TypeError:
                # something in the cycles is not v2-expressible; pickle it
                return self._call(op, pairs, float(step_s))
            if isinstance(reply, wire.V2Frame):
                if h is not None:
                    h.ctx.tracer.absorb(reply.meta.get("spans") or ())
                return wire.decode_rollout_results(reply.meta, reply.arrays)
            return reply

    def metrics_snapshot(self) -> dict | None:
        """The worker engine's metrics snapshot (``None`` unless ``monitor``).

        One ``metrics`` round-trip; the snapshot is plain JSON, so it
        merges with other workers' via
        :func:`repro.monitor.metrics.merge_snapshots`.
        """
        return self._call("metrics")

    def drift_events(self) -> list:
        """The worker monitor's drift-event ring (empty unless ``monitor``).

        One ``drift_events`` round-trip;
        :class:`~repro.monitor.drift.DriftEvent` records are frozen
        dataclasses, so they travel the pickle channel intact and feed
        the harvester / autopilot on the parent side.
        """
        return self._call("drift_events")

    def _adopt_state(self, state: CellState) -> None:
        """Install a migrating cell's state (rebalance protocol).

        A durable worker journals the adoption, so the migrated cell
        survives a restart of its *new* owner.
        """
        self._call("adopt_state", state)

    def _evict_state(self, cell_id: str) -> CellState:
        """Remove and return a migrating cell's state (rebalance protocol).

        A durable worker journals the drop, so a restart of the *old*
        owner cannot resurrect a cell the hash no longer routes to it.
        """
        return self._call("evict_state", cell_id)

    # -- fault injection -------------------------------------------------
    def crash_after_window(self, window: int) -> None:
        """Arm the worker to hard-exit after committing rollout ``window``.

        The worker calls ``os._exit`` from the engine's ``step_hook`` —
        after the window's journal records flushed, before any
        shutdown path runs — simulating a mid-rollout process crash.
        """
        self._call("crash_after", int(window))

    # ------------------------------------------------------------------
    def _call(self, op: str, *args, **kwargs):
        """One pickle-framed round-trip (control ops and fallbacks)."""
        return self._roundtrip(lambda t: t.send_pickle((op, args, kwargs)), op)

    def _roundtrip(self, send: Callable[[Transport], None], op: str):
        transport = self._transport
        if transport is None:
            raise WorkerCrashError(self._down_message(op))
        try:
            reply = transport.request_with(send, timeout_s=self._call_timeout_s)
        except TransportError as exc:
            raise self._transport_failed(op, exc) from exc
        if isinstance(reply, wire.V2Frame):
            return reply
        if reply[0] == "ok":
            return reply[1]
        _, exc_name, message = reply
        exc_type = {"KeyError": KeyError, "ValueError": ValueError}.get(exc_name, RuntimeError)
        raise exc_type(message)


class ProcessShardWorker(_WorkerClient):
    """One shard worker running a :class:`FleetEngine` in a subprocess.

    The local fast path (``pipe://``): the worker is a child of this
    process, the transport its stdio pipes, and crash detection is
    exact — a dead child is reaped and its exit code reported.

    Implements the shard-worker interface :class:`ShardedFleet
    <repro.serve.sharding.ShardedFleet>` assumes (``register_cell`` /
    ``estimate`` / ``predict`` / ``rollout_fleet`` / state
    adopt/evict / ``len`` / ``in``), each call one round-trip on the
    wire protocol.

    Parameters
    ----------
    default_model:
        Model shipped to the child at init (weights over the wire).
    registry_root:
        Optional :class:`~repro.serve.registry.ModelRegistry` directory
        the child opens for per-chemistry routing.
    journal_path:
        Optional per-worker :class:`~repro.serve.persistence.StateJournal`
        file.  A restart restores the engine from it (crash recovery);
        without one a restart comes back empty.
    name:
        Label used in error messages and health reports.
    use_kernel:
        Whether the child engine serves through compiled inference
        kernels (default) or the Tensor path (see
        :class:`~repro.serve.engine.FleetEngine`).
    monitor:
        Build the child engine with its own
        :class:`~repro.monitor.metrics.MetricsRegistry` and
        :class:`~repro.monitor.drift.DriftMonitor` (default
        configurations).  The parent reads the registry over the wire
        via :meth:`metrics_snapshot` (the ``metrics`` op), which
        :meth:`ShardedFleet.metrics
        <repro.serve.sharding.ShardedFleet.metrics>` merges across the
        topology; drift/physics-bounds alarms surface in the snapshot
        as ``drift_events_total{kind=...}`` counters.
    trace:
        Enable distributed-tracing support in the child: requests whose
        v2 frame carries trace context (see
        :data:`repro.serve.wire.TRACE_META_KEY`) get
        ``worker.deserialize`` / ``worker.compute`` /
        ``worker.serialize`` child spans recorded in the subprocess and
        shipped back in the reply meta.  Requests without context — the
        common, unsampled case — pay only a dict lookup.
    archive_root:
        Optional cold-store directory: the child's journal ships
        sealed segments there on rotation (see
        :mod:`repro.serve.archive`).
    dtype:
        Serving precision tier for the child engine's compiled kernels
        (``"float64"`` default / ``"float32"``); see
        :class:`~repro.serve.engine.FleetEngine`.  Estimate/predict
        replies come back in this dtype.
    shm:
        Exchange bulk array payloads through a pair of shared-memory
        slab rings (the ``shm://`` scheme) instead of copying them
        through the pipes.  The rings are created fresh at every
        (re)spawn and unlinked when the worker is released;
        ``shm_slots`` × ``shm_slab_bytes`` bounds each direction's
        ring (oversized messages fall back to in-band frames).
    """

    def __init__(
        self,
        default_model: TwoBranchSoCNet | None = None,
        registry_root: str | Path | None = None,
        journal_path: str | Path | None = None,
        name: str = "shard",
        use_kernel: bool = True,
        monitor: bool = False,
        trace: bool = False,
        archive_root: str | Path | None = None,
        journal_segment_bytes: int = 0,
        drift_from_registry: bool = False,
        dtype=None,
        shm: bool = False,
        shm_slots: int = DEFAULT_SHM_SLOTS,
        shm_slab_bytes: int = DEFAULT_SHM_SLAB_BYTES,
    ):
        self.name = name
        self._spec = _engine_spec(
            default_model,
            registry_root,
            journal_path,
            use_kernel,
            monitor,
            trace,
            archive_root,
            journal_segment_bytes,
            drift_from_registry,
            dtype,
        )
        self._shm = bool(shm)
        self._shm_slots = int(shm_slots)
        self._shm_slab_bytes = int(shm_slab_bytes)
        self._rings: tuple[ShmRing, ShmRing] | None = None
        self._proc: subprocess.Popen | None = None
        self._transport = None
        self._exit_code: int | None = None
        self.restarts = 0
        self._spawn()

    # -- lifecycle -----------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the child process is currently running."""
        return self._proc is not None and self._proc.poll() is None

    @property
    def durable(self) -> bool:
        """Whether this worker journals its state (restart restores it)."""
        return self._spec["journal_path"] is not None

    @property
    def exit_code(self) -> int | None:
        """Exit code of the last child to die (``None`` while alive)."""
        return self._exit_code

    def restart(self) -> None:
        """Respawn a dead worker, restoring its engine from the journal.

        With a ``journal_path`` the new child replays the journal
        (cells, model routing, in-flight rollout progress) before
        serving; an interrupted ``rollout_fleet`` is then completed
        with :meth:`resume_rollout_fleet`.
        """
        if self.alive:
            raise RuntimeError(f"shard worker {self.name!r} is still running")
        self.restarts += 1
        self._spawn()

    def close(self, grace_s: float = 5.0) -> int | None:
        """Gracefully drain and stop the child; returns its exit code.

        Sends the ``shutdown`` op (the child flushes + closes its
        journal and exits 0), waits up to ``grace_s``, then escalates
        to ``kill``.  Safe to call on a dead or already-closed worker.
        """
        proc = self._proc
        if proc is None:
            return self._exit_code
        if proc.poll() is None:
            try:
                self._call("shutdown")
            except WorkerCrashError:
                pass  # it died before acking; reap below
        if self._proc is not None:
            try:
                self._exit_code = self._proc.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                self._proc.kill()
                self._exit_code = self._proc.wait()
            self._release()
        return self._exit_code

    def __enter__(self) -> ProcessShardWorker:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort: do not leak children or ring files
        try:
            if self._proc is not None and self._proc.poll() is None:
                self._proc.kill()
                self._proc.wait()
            if self._rings is not None:
                for ring in self._rings:
                    ring.close(unlink=True)
        except Exception:
            pass

    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        if self._rings is not None:
            # restart() after an external kill never went through
            # _transport_failed/_release; drop the dead child's rings
            for ring in self._rings:
                ring.close(unlink=True)
            self._rings = None
        # -c (not -m): runpy would re-execute this module on top of the
        # copy the package __init__ already imported
        bootstrap = "import sys; from repro.serve.workers import worker_main; sys.exit(worker_main())"
        self._proc = subprocess.Popen(
            [sys.executable, "-c", bootstrap],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=_child_env(),
        )
        scheme = "shm" if self._shm else "pipe"
        self._transport = PipeTransport(
            self._proc.stdin, self._proc.stdout, peer=f"{scheme}://{self.name}"
        )
        self._exit_code = None
        spec = self._spec
        if self._shm:
            # fresh rings per spawn: a respawned child must never read a
            # dead sibling's cursor state.  req = parent writes/child
            # reads, rep = the reverse; the child learns the paths (and
            # its swapped roles) from the init spec.
            ring_dir = shm_ring_dir()
            tag = f"repro-soc-{os.getpid()}-{id(self):x}-{self.restarts}"
            req = ShmRing(
                os.path.join(ring_dir, f"{tag}-req"),
                slots=self._shm_slots,
                slab_bytes=self._shm_slab_bytes,
                create=True,
            )
            rep = ShmRing(
                os.path.join(ring_dir, f"{tag}-rep"),
                slots=self._shm_slots,
                slab_bytes=self._shm_slab_bytes,
                create=True,
            )
            self._rings = (req, rep)
            self._transport.attach_shm(tx=req, rx=rep)
            spec = {
                **spec,
                "shm": {
                    "req": req.path,
                    "rep": rep.path,
                    "slots": self._shm_slots,
                    "slab_bytes": self._shm_slab_bytes,
                },
            }
        self._call("init", spec)

    def _release(self) -> None:
        proc, self._proc = self._proc, None
        transport, self._transport = self._transport, None
        rings, self._rings = self._rings, None
        if transport is not None:
            transport.close()
        if rings is not None:
            for ring in rings:
                ring.close(unlink=True)
        if proc is not None:
            for stream in (proc.stdin, proc.stdout):
                if stream is not None:
                    try:
                        stream.close()
                    except OSError:
                        pass

    def _down_message(self, op: str) -> str:
        return (
            f"shard worker {self.name!r} is not running "
            f"(last exit code {self._exit_code}); call restart()"
        )

    def _transport_failed(self, op: str, exc: Exception) -> WorkerCrashError:
        # the child is ours: reap it for the exact exit code
        self._exit_code = self._proc.wait()
        self._release()
        return WorkerCrashError(
            f"shard worker {self.name!r} died during {op!r} (exit code {self._exit_code})"
        )


class RemoteShardWorker(_WorkerClient):
    """A shard worker reached over a socket (``unix://`` or ``tcp://``).

    Same protocol, same engine, different failure model: the peer may
    be a process this parent never spawned (another host entirely), so
    there is no ``waitpid`` — death is detected in-band.  A dead link
    (torn frame, reset, refused reconnect) surfaces as
    :class:`WorkerCrashError` on the call that hit it; a *silent*
    death (e.g. a remote machine partitioned away) is caught by
    :meth:`check_alive`, a ping with a short receive deadline that the
    control plane runs between requests.

    Two spawn modes:

    - ``spawn=False`` (default): dial an already-listening worker
      (started with ``repro-soc worker --listen URL``).  ``restart()``
      redials the same URL — the crashed worker is expected to be
      brought back by its own supervisor, and the connect retry window
      makes the race benign.
    - ``spawn=True``: launch ``run_worker`` locally as a subprocess
      listening on ``url`` (use port 0 for an ephemeral port), then
      connect.  ``restart()`` respawns the process; ``close()`` reaps
      it.  This is how ``serve-sim --worker-transport tcp`` exercises
      the socket path on one machine.

    The engine spec (model weights, registry root, journal path,
    monitor/trace flags) ships over the connection in the ``init`` op,
    exactly as for the pipe path — a reconnect re-sends it and the
    worker restores from its journal first.
    """

    def __init__(
        self,
        url: str,
        default_model: TwoBranchSoCNet | None = None,
        registry_root: str | Path | None = None,
        journal_path: str | Path | None = None,
        name: str = "remote",
        use_kernel: bool = True,
        monitor: bool = False,
        trace: bool = False,
        archive_root: str | Path | None = None,
        journal_segment_bytes: int = 0,
        drift_from_registry: bool = False,
        dtype=None,
        spawn: bool = False,
        connect_timeout_s: float = 10.0,
        call_timeout_s: float | None = None,
        _transport: Transport | None = None,
    ):
        self.name = name
        self._spec = _engine_spec(
            default_model,
            registry_root,
            journal_path,
            use_kernel,
            monitor,
            trace,
            archive_root,
            journal_segment_bytes,
            drift_from_registry,
            dtype=dtype,
        )
        self._requested_url = str(parse_url(url)) if url is not None else None
        self.url: str | None = self._requested_url
        self._spawn_proc: subprocess.Popen | None = None
        self._should_spawn = bool(spawn)
        self._connect_timeout_s = float(connect_timeout_s)
        self._call_timeout_s = call_timeout_s
        self._transport = None
        self._exit_code: int | None = None
        self.restarts = 0
        if _transport is not None:
            self.attach(_transport)
        else:
            if self._should_spawn:
                self._spawn_listener()
            self._connect()

    @classmethod
    def from_transport(cls, transport: Transport, name: str = "remote", **spec_kwargs):
        """Adopt an already-connected transport (a worker that dialed us).

        Used by the daemon for ``repro-soc worker --connect`` peers:
        the worker initiated the connection, so there is no URL to
        redial — after a disconnect the worker is expected to dial
        again, and the daemon re-attaches the new transport with
        :meth:`attach`.
        """
        return cls(url=None, name=name, _transport=transport, **spec_kwargs)

    # -- lifecycle -----------------------------------------------------
    @property
    def alive(self) -> bool:
        """Cached liveness: the link was up at the last completed call.

        Cheap enough for ``/healthz``; a silently-dead remote peer
        stays ``True`` until a call fails or :meth:`check_alive`
        probes it.
        """
        if self._spawn_proc is not None and self._spawn_proc.poll() is not None:
            return False
        return self._transport is not None and not self._transport.closed

    @property
    def durable(self) -> bool:
        """Whether this worker journals its state (restart restores it)."""
        return self._spec["journal_path"] is not None

    @property
    def exit_code(self) -> int | None:
        """Exit code of the last locally-spawned worker to die.

        Always ``None`` for remote peers this parent did not spawn —
        their exit codes are not observable, which is exactly why
        :meth:`check_alive` exists.
        """
        return self._exit_code

    def check_alive(self, timeout_s: float = 2.0) -> bool:
        """Actively probe the peer: one ``ping`` with a receive deadline.

        Returns ``False`` — and marks the worker dead — if the peer is
        down, the link is torn, or no ``pong`` arrives within
        ``timeout_s``.  This is the heartbeat the control plane runs
        between requests; a timeout poisons the transport (the stream
        may be mid-frame), so the only way back is ``restart()``.
        """
        transport = self._transport
        if transport is None or transport.closed:
            return False
        try:
            reply = transport.request(("ping", (), {}), timeout_s=timeout_s)
        except TransportError:
            self._drop_link()
            return False
        return reply == ("ok", "pong")

    def restart(self) -> None:
        """Redial (or respawn) a dead worker; its journal restores it."""
        if self.alive:
            raise RuntimeError(f"shard worker {self.name!r} is still running")
        if self._requested_url is None:
            raise WorkerCrashError(
                f"shard worker {self.name!r} connected inbound; "
                "it must dial back in (reattach by name)"
            )
        self.restarts += 1
        self._drop_link()
        if self._should_spawn and self._spawn_proc is not None and self._spawn_proc.poll() is None:
            # the link is down but the child is not reapable yet: a hard
            # crash resets the socket a beat before the process exits.
            # Give it a moment to settle so we respawn instead of
            # redialing a port nobody listens on.  A child that is
            # genuinely alive (poisoned transport, healthy process) just
            # rides out the wait and gets redialed below.
            try:
                self._spawn_proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                pass
        if self._should_spawn and (self._spawn_proc is None or self._spawn_proc.poll() is not None):
            self._reap_spawned()
            self._spawn_listener()
        self._connect()

    def attach(self, transport: Transport) -> None:
        """Adopt a fresh transport for this worker and re-init its engine.

        The reconnect half of the ``--connect`` flow: a worker that
        dialed back in after a crash is re-attached here; its engine
        restores from its journal during ``init``, after which
        ``resume_rollout_fleet`` completes any interrupted windows.
        """
        if self._transport is not None and not self._transport.closed:
            self._transport.close()
        self._transport = transport
        self._call("init", self._spec)

    def close(self, grace_s: float = 5.0) -> int | None:
        """Drain the worker and drop the link; reap a spawned process.

        Sends ``shutdown`` (the worker closes its journal and exits),
        closes the transport, and — for ``spawn=True`` workers — waits
        up to ``grace_s`` before escalating to ``kill``.  Returns the
        exit code when the worker was locally spawned, else ``None``.
        """
        if self._transport is not None and not self._transport.closed:
            try:
                self._call("shutdown")
            except WorkerCrashError:
                pass  # it died before acking
        self._drop_link()
        if self._spawn_proc is not None:
            try:
                self._exit_code = self._spawn_proc.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                self._spawn_proc.kill()
                self._exit_code = self._spawn_proc.wait()
            self._reap_spawned()
        return self._exit_code

    def __enter__(self) -> RemoteShardWorker:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort: do not leak spawned workers
        try:
            if self._spawn_proc is not None and self._spawn_proc.poll() is None:
                self._spawn_proc.kill()
                self._spawn_proc.wait()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def _spawn_listener(self) -> None:
        """Launch a standalone socket worker and learn its bound URL."""
        bootstrap = (
            "import sys; from repro.serve.workers import run_worker; sys.exit(run_worker(sys.argv[1]))"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", bootstrap, self._requested_url],
            stdout=subprocess.PIPE,
            env=_child_env(),
        )
        # the worker announces its resolved address (ephemeral ports!)
        # on stdout before accepting; an empty read means it died
        line = proc.stdout.readline().decode("utf-8", "replace").strip()
        if not line.startswith(WORKER_ANNOUNCE):
            code = proc.poll()
            proc.stdout.close()
            raise WorkerCrashError(
                f"spawned worker {self.name!r} failed to listen on "
                f"{self._requested_url} (exit code {code}, said {line!r})"
            )
        self._spawn_proc = proc
        self._exit_code = None
        self.url = line[len(WORKER_ANNOUNCE) :].strip()

    def _connect(self) -> None:
        self._transport = connect(self.url, timeout_s=self._connect_timeout_s)
        self._call("init", self._spec)

    def _drop_link(self) -> None:
        transport, self._transport = self._transport, None
        if transport is not None:
            transport.close()

    def _reap_spawned(self) -> None:
        proc, self._spawn_proc = self._spawn_proc, None
        if proc is not None:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()

    def _down_message(self, op: str) -> str:
        return f"shard worker {self.name!r} is not running (link down); call restart()"

    def _transport_failed(self, op: str, exc: Exception) -> WorkerCrashError:
        self._drop_link()
        detail = str(exc)
        if self._spawn_proc is not None and self._spawn_proc.poll() is not None:
            self._exit_code = self._spawn_proc.poll()
            detail = f"exit code {self._exit_code}"
        return WorkerCrashError(f"shard worker {self.name!r} died during {op!r} ({detail})")


def _child_env() -> dict:
    env = os.environ.copy()
    src_root = str(Path(__file__).resolve().parents[2])
    pythonpath = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not pythonpath else src_root + os.pathsep + pythonpath
    return env


# -- worker specification ----------------------------------------------
@dataclasses.dataclass
class WorkerSpec:
    """Declarative description of one shard worker — the single factory.

    :class:`ShardedFleet <repro.serve.sharding.ShardedFleet>` resolves
    every shard through :meth:`resolve`, whatever the topology:

    - ``url=None`` — an in-process :class:`FleetEngine` (the original
      thread-sharded mode);
    - ``url="pipe://"`` — a :class:`ProcessShardWorker` subprocess
      over stdio pipes (the local fast path);
    - ``url="shm://"`` — the same subprocess topology, but bulk array
      payloads travel through preallocated shared-memory slab rings
      (``shm_slots`` x ``shm_slab_bytes`` each way); pipes carry only
      the small framing/meta bytes;
    - ``url="tcp://host:port"`` / ``"unix:///path"`` — a
      :class:`RemoteShardWorker`; with ``spawn=True`` the worker
      process is launched locally first (``tcp://127.0.0.1:0`` picks
      ephemeral ports, so one spec template serves any shard count).

    ``name``, ``url`` and ``journal`` are templates: a ``{shard}``
    placeholder is substituted with the shard index; a journal path
    without one gets a ``.shard{k}`` suffix so workers never share a
    journal file.  ``journal`` may also be a ready
    :class:`~repro.serve.persistence.StateJournal` *instance* — valid
    only for in-process shards, which share one fleet journal.

    ``drift_from_registry=True`` resolves per-chemistry drift-detector
    specs from the registry's published-model metadata
    (:func:`~repro.serve.driftconfig.drift_resolver_from_registry`)
    instead of the uniform default detectors ``monitor=True`` builds;
    it requires a ``registry``.

    ``dtype`` selects the serving tier (``"float64"`` default;
    ``"float32"`` halves kernel memory traffic and requires
    ``use_kernel=True``) and is forwarded to every resolved engine.
    """

    url: str | None = None
    model: TwoBranchSoCNet | None = None
    registry: ModelRegistry | str | Path | None = None
    journal: StateJournal | str | Path | None = None
    monitor: bool = False
    trace: bool = False
    use_kernel: bool = True
    archive_root: str | Path | None = None
    journal_segment_bytes: int = 0
    drift_from_registry: bool = False
    dtype: object = None
    shm_slots: int = DEFAULT_SHM_SLOTS
    shm_slab_bytes: int = DEFAULT_SHM_SLAB_BYTES
    spawn: bool = False
    name: str = "shard{shard}"
    connect_timeout_s: float = 10.0
    call_timeout_s: float | None = None
    metrics: object = None
    drift: object = None

    def __post_init__(self):
        if self.url is not None:
            parse_url(self.url if "{shard}" not in self.url else self.url.format(shard=0))
        if self.model is None and self.registry is None and self.url is not None:
            raise ValueError("need a default model, a registry root, or both")
        if self.drift_from_registry and self.registry is None:
            raise ValueError("drift_from_registry needs a registry to resolve specs from")

    @property
    def scheme(self) -> str | None:
        """``None`` for in-process, else the transport scheme."""
        if self.url is None:
            return None
        return parse_url(self.url if "{shard}" not in self.url else self.url.format(shard=0)).scheme

    def resolve(self, index: int):
        """Build the worker for shard ``index`` (engine or RPC client)."""
        name = self.name.format(shard=index)
        scheme = self.scheme
        if scheme is None:
            return self._resolve_engine()
        registry_root = self.registry.root if isinstance(self.registry, ModelRegistry) else self.registry
        journal_path = self._journal_path(index)
        common = dict(
            default_model=self.model,
            registry_root=registry_root,
            journal_path=journal_path,
            name=name,
            use_kernel=self.use_kernel,
            monitor=self.monitor,
            trace=self.trace,
            archive_root=self.archive_root,
            journal_segment_bytes=self.journal_segment_bytes,
            drift_from_registry=self.drift_from_registry,
            dtype=self.dtype,
        )
        if scheme in ("pipe", "shm"):
            return ProcessShardWorker(
                **common,
                shm=(scheme == "shm"),
                shm_slots=self.shm_slots,
                shm_slab_bytes=self.shm_slab_bytes,
            )
        url = self.url.format(shard=index) if "{shard}" in self.url else self.url
        return RemoteShardWorker(
            url,
            spawn=self.spawn,
            connect_timeout_s=self.connect_timeout_s,
            call_timeout_s=self.call_timeout_s,
            **common,
        )

    def _resolve_engine(self) -> FleetEngine:
        registry = self.registry
        if registry is not None and not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        journal = self.journal
        if journal is not None and not isinstance(journal, StateJournal):
            raise ValueError(
                "in-process shards share one StateJournal; pass the instance, not a path"
            )
        metrics, drift = self.metrics, self.drift
        if self.monitor and metrics is None:
            from ..monitor.drift import DriftMonitor
            from ..monitor.metrics import MetricsRegistry

            metrics = MetricsRegistry()
            drift = DriftMonitor(metrics=metrics)
        if self.drift_from_registry and registry is not None:
            from .driftconfig import drift_resolver_from_registry

            drift = drift_resolver_from_registry(registry)
        return FleetEngine(
            default_model=self.model,
            registry=registry,
            journal=journal,
            use_kernel=self.use_kernel,
            metrics=metrics,
            drift=drift,
            dtype=self.dtype or "float64",
        )

    def _journal_path(self, index: int) -> str | None:
        if self.journal is None:
            return None
        if isinstance(self.journal, StateJournal):
            raise ValueError(
                "process/socket workers own their journal file; pass a path template, "
                "not a StateJournal instance"
            )
        template = str(self.journal)
        if "{shard}" in template:
            return template.format(shard=index)
        return f"{template}.shard{index}"


# -- worker side -------------------------------------------------------
WORKER_ANNOUNCE = "worker listening on "


def _build_engine(spec: dict) -> FleetEngine:
    model = _build_model(spec["model"])
    registry = None if spec["registry_root"] is None else ModelRegistry(spec["registry_root"])
    use_kernel = spec.get("use_kernel", True)
    metrics = drift = None
    if spec.get("monitor"):
        from ..monitor.drift import DriftMonitor
        from ..monitor.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        drift = DriftMonitor(metrics=metrics)
    if spec.get("drift_from_registry") and registry is not None:
        from .driftconfig import drift_resolver_from_registry

        # the engine wraps the resolver in a ChemistryDriftRouter
        drift = drift_resolver_from_registry(registry)
    kwargs = dict(
        default_model=model,
        registry=registry,
        use_kernel=use_kernel,
        metrics=metrics,
        drift=drift,
        dtype=spec.get("dtype", "float64"),
    )
    journal_path = spec["journal_path"]
    if journal_path is None:
        return FleetEngine(**kwargs)
    archive = None
    if spec.get("archive_root"):
        from .archive import DirectoryArchiveStore

        archive = DirectoryArchiveStore(spec["archive_root"])
    journal = StateJournal(
        journal_path,
        archive=archive,
        max_segment_bytes=spec.get("journal_segment_bytes", 0) or 0,
    )
    snapshot = journal.snapshot()
    if snapshot.cells or snapshot.windows:
        return FleetEngine.restore(journal, **kwargs)
    return FleetEngine(journal=journal, **kwargs)


def _crash_hook(after_window: int) -> Callable[[int], None]:
    def hook(window: int) -> None:
        if window >= after_window:
            os._exit(86)  # hard crash: skip journal close, atexit, everything

    return hook


class WorkerEndpoint:
    """The worker-side serving loop: read frames, dispatch, reply.

    One endpoint serves one :class:`Transport` until the peer goes
    away (``serve`` returns ``"closed"`` — a listener may then accept
    a new connection) or sends the ``shutdown`` op (``"shutdown"`` —
    the process should exit).  Both ``worker_main`` (pipes) and
    :func:`run_worker` (socket listener) are thin wrappers over this
    class, so the dispatch semantics — including journal close on
    drain and the crash-injection hook — are identical on every
    transport.
    """

    def __init__(self, transport: Transport):
        self.transport = transport
        self.engine: FleetEngine | None = None
        self._crash_after: int | None = None
        self._tracer = None

    def serve(self) -> str:
        """Serve until the peer closes (``"closed"``) or drains (``"shutdown"``)."""
        while True:
            try:
                frame = self.transport.recv_frame()
            except TransportError:
                frame = None  # peer vanished mid-frame: same as a close
            if frame is None:
                self._close_journal()
                return "closed"
            try:
                if isinstance(frame, wire.V2Frame):
                    self._serve_v2(frame)
                    continue
                if self._serve_v1(frame):
                    return "shutdown"
            except TransportError:
                # the peer died while we were replying; nothing to tell it
                self._close_journal()
                return "closed"

    def _close_journal(self) -> None:
        if self.engine is not None and self.engine.journal is not None:
            self.engine.journal.close()

    def _serve_v1(self, frame) -> bool:
        """Dispatch one pickled control op; ``True`` means shutdown."""
        op, args, kwargs = frame
        engine = self.engine
        try:
            if op == "init":
                self.engine = _build_engine(args[0])
                shm_spec = args[0].get("shm")
                if shm_spec is not None:
                    # roles swap on this side: the parent's request ring is
                    # our receive ring, its reply ring is our transmit ring
                    rx = ShmRing(shm_spec["req"], slots=shm_spec["slots"], slab_bytes=shm_spec["slab_bytes"])
                    tx = ShmRing(shm_spec["rep"], slots=shm_spec["slots"], slab_bytes=shm_spec["slab_bytes"])
                    self.transport.attach_shm(tx=tx, rx=rx)
                if args[0].get("trace"):
                    from ..monitor.tracing import SpanTracer

                    # recorder only: no head sampling, no metrics — the
                    # parent commits traces and owns the rollup
                    self._tracer = SpanTracer(sample_rate=0.0, service="worker")
                result = "ready"
            elif op == "shutdown":
                self._close_journal()
                self.transport.send_pickle(("ok", "bye"))
                return True
            elif op == "ping":
                result = "pong"
            elif op == "metrics":
                result = None if engine is None else engine.metrics_snapshot()
            elif op == "crash_after":
                self._crash_after = int(args[0])
                result = self._crash_after
            elif engine is None:
                raise RuntimeError(f"worker received {op!r} before 'init'")
            elif op in ("rollout_fleet", "resume_rollout_fleet"):
                hook = None if self._crash_after is None else _crash_hook(self._crash_after)
                result = getattr(engine, op)(args[0], args[1], step_hook=hook)
            elif op == "cells":
                result = [dataclasses.replace(state) for state in engine.cells()]
            elif op == "len":
                result = len(engine)
            elif op == "contains":
                result = args[0] in engine
            elif op == "adopt_state":
                # unlike in-process shards (whose shared journal already
                # holds the record), this worker's own journal must learn
                # about cells migrating in — or a restart would lose them
                engine._adopt_state(args[0])
                if engine.journal is not None:
                    engine.journal.append_cell(args[0])
                result = None
            elif op == "evict_state":
                result = engine._evict_state(args[0])
                if engine.journal is not None:
                    engine.journal.drop_cell(args[0])
            elif op in (
                "register_cell",
                "deregister_cell",
                "reroute_cell",
                "cell",
                "estimate",
                "predict",
                "drift_events",
            ):
                result = getattr(engine, op)(*args, **kwargs)
            else:
                raise RuntimeError(f"unknown op {op!r}")
        except TransportError:
            raise
        except Exception as exc:  # engine errors travel the wire, not the process
            self.transport.send_pickle(("err", type(exc).__name__, str(exc)))
        else:
            self.transport.send_pickle(("ok", result))
        return False

    def _serve_v2(self, frame: wire.V2Frame) -> None:
        """Dispatch one bulk (v2-framed) request and write its reply.

        When the frame meta carries trace context and this worker was
        built with ``trace=True``, the worker records
        ``worker.deserialize`` / ``worker.compute`` /
        ``worker.serialize`` spans against the propagated trace and
        ships them back in the reply meta (``"spans"``).  The
        serialize span covers reply-payload *assembly* only — the
        spans ride inside the frame, so the frame write itself cannot
        be timed from in here.  Timestamps are ``time.monotonic``,
        machine-wide on Linux, so they align with the parent's spans.
        """
        engine, tracer = self.engine, self._tracer
        kind, meta, arrays = frame.kind, frame.meta, frame.arrays
        ctx = None
        if tracer is not None and meta.get(wire.TRACE_META_KEY):
            ctx = tracer.from_wire(meta[wire.TRACE_META_KEY])
        try:
            if engine is None:
                raise RuntimeError(f"worker received {kind!r} before 'init'")
            t0 = time.monotonic()
            if kind == "estimate":
                ids = wire.decode_str_list(arrays[0], meta["n"])
                if ctx is not None:
                    tracer.record(ctx, "worker.deserialize", t0, time.monotonic(), op=kind)
                with activate(ctx), trace_stage("worker.compute", op=kind):
                    out = engine.estimate(ids, arrays[1], arrays[2], arrays[3], now_s=meta["now_s"])
                reply_meta, reply_arrays = {}, [out]
            elif kind == "predict":
                ids = wire.decode_str_list(arrays[0], meta["n"])
                if ctx is not None:
                    tracer.record(ctx, "worker.deserialize", t0, time.monotonic(), op=kind)
                with activate(ctx), trace_stage("worker.compute", op=kind):
                    out = engine.predict(
                        ids,
                        arrays[1],
                        arrays[2],
                        arrays[3],
                        soc_now=arrays[4] if meta["has_soc"] else None,
                        commit=meta["commit"],
                        now_s=meta["now_s"],
                    )
                reply_meta, reply_arrays = {}, [out]
            elif kind in ("rollout_fleet", "resume_rollout_fleet"):
                pairs, step_s = wire.decode_rollout_request(meta, arrays)
                if ctx is not None:
                    tracer.record(ctx, "worker.deserialize", t0, time.monotonic(), op=kind)
                hook = None if self._crash_after is None else _crash_hook(self._crash_after)
                with activate(ctx), trace_stage("worker.compute", op=kind):
                    results = getattr(engine, kind)(pairs, step_s, step_hook=hook)
                t_ser = time.monotonic()
                reply_meta, reply_arrays = wire.encode_rollout_results(results)
                if ctx is not None:
                    tracer.record(ctx, "worker.serialize", t_ser, time.monotonic(), op=kind)
            else:
                raise RuntimeError(f"unknown v2 op {kind!r}")
            if ctx is not None:
                if kind in ("estimate", "predict"):
                    # zero-copy replies have no assembly step; the span marks
                    # the (empty) serialize stage so trees stay uniform
                    tracer.record(ctx, "worker.serialize", time.monotonic(), time.monotonic(), op=kind)
                reply_meta["spans"] = tracer.drain(ctx.trace_id)
            self.transport.send_v2("ok", reply_meta, reply_arrays)
        except TransportError:
            raise
        except Exception as exc:  # engine errors travel the wire, not the process
            if ctx is not None:
                tracer.drain(ctx.trace_id)  # discard: never leak a live buffer on errors
            self.transport.send_pickle(("err", type(exc).__name__, str(exc)))


def worker_main(stdin=None, stdout=None) -> int:
    """Child-process serving loop over the stdio pipes.

    Runs until the parent closes the pipe (implicit drain) or sends the
    ``shutdown`` op (explicit drain: journal closed, reply sent, exit
    0).  Exposed as ``python -m repro.serve.workers``.
    """
    rd = stdin if stdin is not None else sys.stdin.buffer
    wr = stdout if stdout is not None else sys.stdout.buffer
    sys.stdout = sys.stderr  # stray prints must not corrupt the frame stream
    WorkerEndpoint(PipeTransport(wr, rd, peer="pipe://parent")).serve()
    return 0


def run_worker(listen_url: str, once: bool = False, announce=None) -> int:
    """Standalone socket worker: bind, announce, serve (``repro-soc worker``).

    Binds ``listen_url`` (``tcp://host:port`` — port 0 for ephemeral —
    or ``unix:///path``), prints ``worker listening on <resolved-url>``
    to stdout so a spawning parent can learn the address, then serves
    one connection at a time.  A peer that disconnects (parent crash)
    just returns the worker to ``accept`` — state lives in the journal
    and the next ``init`` restores it — while the ``shutdown`` op ends
    the process.  ``once=True`` exits after the first connection
    closes (tests).
    """
    listener = TransportListener(listen_url)
    message = f"{WORKER_ANNOUNCE}{listener.url}"
    if announce is not None:
        announce(message)
    else:
        print(message, flush=True)
    sys.stdout = sys.stderr  # same hygiene as the pipe path, post-announce
    try:
        while True:
            try:
                peer = listener.accept()
            except TransportError:
                return 0  # listener closed under us
            try:
                reason = WorkerEndpoint(peer).serve()
            finally:
                peer.close()
            if reason == "shutdown" or once:
                return 0
    except KeyboardInterrupt:
        return 0
    finally:
        listener.close()


def run_worker_connect(
    daemon_url: str,
    name: str,
    reconnect: bool = True,
    connect_timeout_s: float = 10.0,
    announce=None,
) -> int:
    """Dial a daemon and serve as one of its shard workers (NAT-friendly).

    The inverse topology of :func:`run_worker`: instead of listening
    for the fleet to dial in, the worker dials the daemon's control
    URL, introduces itself with a ``worker_hello`` frame carrying its
    ``name``, and then the roles flip — the daemon wraps this very
    connection in a :class:`RemoteShardWorker` and starts sending
    engine ops, which a :class:`WorkerEndpoint` serves.

    ``name`` is the worker's identity across reconnects: if this
    worker (or its link) dies and the process dials back in with the
    same name, the daemon re-attaches it to its old shard — journal
    restore plus ``resume_rollout_fleet`` make the comeback
    state-exact.  With ``reconnect=True`` (the default, the
    ``repro-soc worker --connect`` behavior) a dropped daemon
    connection is redialed until the daemon comes back or the process
    is killed; a clean ``shutdown`` op always ends the loop.
    """
    notify = announce if announce is not None else lambda m: print(m, flush=True)
    while True:
        try:
            transport = connect(daemon_url, timeout_s=connect_timeout_s)
        except TransportError as exc:
            if not reconnect:
                raise
            notify(f"daemon at {daemon_url} unreachable ({exc}); retrying")
            time.sleep(min(connect_timeout_s, 1.0))
            continue
        try:
            reply = transport.request(("worker_hello", (name,), {}), timeout_s=connect_timeout_s)
        except TransportError:
            transport.close()
            if not reconnect:
                return 1
            continue
        if reply != ("ok", "attach"):
            transport.close()
            notify(f"daemon at {daemon_url} refused worker {name!r}: {reply!r}")
            return 1
        notify(f"worker {name!r} attached to {daemon_url}")
        try:
            reason = WorkerEndpoint(transport).serve()
        finally:
            transport.close()
        if reason == "shutdown" or not reconnect:
            return 0
        notify(f"daemon connection lost; worker {name!r} re-dialing {daemon_url}")


if __name__ == "__main__":
    sys.exit(worker_main())
