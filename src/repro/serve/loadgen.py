"""Open-loop load generation for the perf lab.

The existing benchmark clients are **closed-loop**: each client awaits
its previous request before sending the next, so when the gateway slows
down the clients slow down with it — offered load adapts to capacity
and the latency curve *plateaus* instead of diverging.  Closed-loop
numbers therefore systematically understate saturation ("coordinated
omission").  An **open-loop** generator draws arrival times from a
fixed stochastic schedule and fires each request when its time comes,
whether or not earlier ones have completed.  Past the capacity knee the
queue grows without bound and measured latency diverges — which is
exactly the signal the capacity model needs.

Arrival processes (:func:`arrival_times`, all seeded/deterministic):

- ``steady`` — evenly spaced, one every ``1/rate`` seconds;
- ``poisson`` — homogeneous Poisson (i.i.d. exponential interarrivals);
- ``burst`` — on/off inhomogeneous Poisson: rate ``rate/duty`` during
  the on-fraction of each period, zero otherwise (mean rate stays
  ``rate``);
- ``diurnal`` — sinusoidally modulated Poisson,
  ``rate * (1 + depth * sin(2*pi*t/period))``, a compressed day/night
  cycle.

Inhomogeneous processes are drawn by thinning [Lewis & Shedler 1979]:
sample a homogeneous process at the peak rate, keep each arrival with
probability ``lambda(t)/lambda_max``.

Latency accounting: open-loop latency is measured from the **scheduled
arrival time**, not from when the event loop actually got to send the
request.  If the loop falls behind (send lag), that slip *is* queueing
delay a real outside client would experience, so it counts.  Send lag
is also reported separately so a run where the generator itself was the
bottleneck is identifiable.

:func:`run_closed_loop` implements the classic N-outstanding-requests
client with the same report format, so tests and the perf lab can show
both behaviours side by side.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "LoadReport",
    "arrival_times",
    "run_closed_loop",
    "run_open_loop",
]

ARRIVAL_SHAPES = ("steady", "poisson", "burst", "diurnal")


def arrival_times(
    shape: str,
    rate: float,
    duration_s: float,
    seed: int = 0,
    *,
    burst_period_s: float = 2.0,
    burst_duty: float = 0.25,
    diurnal_period_s: float = 10.0,
    diurnal_depth: float = 0.8,
) -> np.ndarray:
    """Arrival offsets (seconds from start, sorted) for one run.

    ``rate`` is the *mean* offered rate in requests/second for every
    shape — burst and diurnal redistribute the same total load in time.
    """
    if shape not in ARRIVAL_SHAPES:
        raise ValueError(f"unknown arrival shape {shape!r} (expected one of {ARRIVAL_SHAPES})")
    if rate <= 0.0 or duration_s <= 0.0:
        raise ValueError("rate and duration_s must be positive")
    rng = np.random.default_rng(seed)
    if shape == "steady":
        n = max(1, int(round(rate * duration_s)))
        return np.arange(n, dtype=np.float64) / rate
    if shape == "poisson":
        # draw with headroom, cut at the horizon
        n_guess = max(16, int(rate * duration_s * 1.5) + 8 * int(np.sqrt(rate * duration_s) + 1))
        times = np.cumsum(rng.exponential(1.0 / rate, size=n_guess))
        while times.size and times[-1] < duration_s:
            times = np.concatenate([times, times[-1] + np.cumsum(rng.exponential(1.0 / rate, size=n_guess))])
        return times[times < duration_s]
    if shape == "burst":
        if not 0.0 < burst_duty <= 1.0:
            raise ValueError("burst_duty must be within (0, 1]")
        peak = rate / burst_duty
        candidates = arrival_times("poisson", peak, duration_s, seed)
        phase = (candidates % burst_period_s) / burst_period_s
        return candidates[phase < burst_duty]
    # diurnal: thinning at the peak rate
    if not 0.0 <= diurnal_depth <= 1.0:
        raise ValueError("diurnal_depth must be within [0, 1]")
    peak = rate * (1.0 + diurnal_depth)
    candidates = arrival_times("poisson", peak, duration_s, seed)
    lam = rate * (1.0 + diurnal_depth * np.sin(2.0 * np.pi * candidates / diurnal_period_s))
    keep = rng.uniform(0.0, peak, size=candidates.size) < lam
    return candidates[keep]


@dataclass
class LoadReport:
    """Outcome of one load-generation phase (open- or closed-loop)."""

    mode: str
    shape: str
    offered_rate: float  # scheduled requests / scheduled duration
    duration_s: float  # wall time of the phase
    requests: int
    ok: int
    errors: int
    shed: int
    latencies_s: np.ndarray = field(repr=False)
    send_lag_s: np.ndarray = field(repr=False)

    @property
    def achieved_rate(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    def quantile_ms(self, p: float) -> float:
        if self.latencies_s.size == 0:
            return float("nan")
        return float(np.percentile(self.latencies_s, p * 100.0) * 1e3)

    def to_dict(self) -> dict:
        """JSON-safe summary (exact quantiles over all completions)."""
        lat = self.latencies_s
        lag = self.send_lag_s
        half = lat.size // 2
        return {
            "mode": self.mode,
            "shape": self.shape,
            "offered_rate": self.offered_rate,
            "achieved_rate": self.achieved_rate,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "shed": self.shed,
            "latency_ms": {
                "mean": float(lat.mean() * 1e3) if lat.size else None,
                "p50": self.quantile_ms(0.50) if lat.size else None,
                "p95": self.quantile_ms(0.95) if lat.size else None,
                "p99": self.quantile_ms(0.99) if lat.size else None,
                "max": float(lat.max() * 1e3) if lat.size else None,
                # divergence signal: a saturated open-loop run has a
                # second half far slower than its first
                "first_half_mean": float(lat[:half].mean() * 1e3) if half else None,
                "second_half_mean": float(lat[half:].mean() * 1e3) if half else None,
            },
            "send_lag_ms": {
                "p50": float(np.percentile(lag, 50) * 1e3) if lag.size else None,
                "p99": float(np.percentile(lag, 99) * 1e3) if lag.size else None,
                "max": float(lag.max() * 1e3) if lag.size else None,
            },
        }


def _classify(completion) -> str:
    """ok / shed / error from a gateway :class:`Completion`."""
    error = getattr(completion, "error", None)
    if error is None:
        return "ok"
    if isinstance(error, str) and error.startswith("shed:"):
        return "shed"
    return "error"


async def run_open_loop(
    make_call,
    arrivals: np.ndarray,
    *,
    shape: str = "steady",
    clock=time.monotonic,
) -> LoadReport:
    """Fire one request per scheduled arrival, never waiting for earlier ones.

    ``make_call(i)`` must return an awaitable producing a gateway
    :class:`~repro.serve.scheduler.Completion` (or raising
    ``GatewayOverloaded``, counted as shed).  Latency for request ``i``
    is ``completion_time - (start + arrivals[i])`` — queueing slip
    included, which is the whole point of open loop.
    """
    from .gateway import GatewayOverloaded

    arrivals = np.asarray(arrivals, dtype=np.float64)
    n = int(arrivals.size)
    latencies = np.zeros(n)
    send_lag = np.zeros(n)
    outcomes: list[str | None] = [None] * n
    start = clock()

    async def fire(i: int, scheduled: float) -> None:
        send_lag[i] = max(0.0, (clock() - start) - scheduled)
        try:
            completion = await make_call(i)
            outcomes[i] = _classify(completion)
        except GatewayOverloaded:
            outcomes[i] = "shed"
        except Exception:
            outcomes[i] = "error"
        latencies[i] = (clock() - start) - scheduled

    tasks = []
    for i, scheduled in enumerate(arrivals):
        delay = scheduled - (clock() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(fire(i, float(scheduled))))
    if tasks:
        await asyncio.gather(*tasks)
    duration = clock() - start
    span = float(arrivals[-1]) if n else 0.0
    offered = n / span if span > 0 else float(n)
    return LoadReport(
        mode="open",
        shape=shape,
        offered_rate=offered,
        duration_s=duration,
        requests=n,
        ok=outcomes.count("ok"),
        errors=outcomes.count("error"),
        shed=outcomes.count("shed"),
        latencies_s=latencies,
        send_lag_s=send_lag,
    )


async def run_closed_loop(
    make_call,
    n_requests: int,
    *,
    clients: int = 4,
    shape: str = "closed",
    clock=time.monotonic,
) -> LoadReport:
    """Classic closed-loop driver: ``clients`` workers, one request in
    flight each.  Offered load self-limits to capacity — kept for
    side-by-side comparison with :func:`run_open_loop`."""
    from .gateway import GatewayOverloaded

    latencies = np.zeros(n_requests)
    outcomes: list[str | None] = [None] * n_requests
    counter = iter(range(n_requests))
    start = clock()

    async def worker() -> None:
        for i in counter:
            sent = clock()
            try:
                completion = await make_call(i)
                outcomes[i] = _classify(completion)
            except GatewayOverloaded:
                outcomes[i] = "shed"
            except Exception:
                outcomes[i] = "error"
            latencies[i] = clock() - sent

    await asyncio.gather(*(worker() for _ in range(max(1, clients))))
    duration = clock() - start
    return LoadReport(
        mode="closed",
        shape=shape,
        offered_rate=n_requests / duration if duration > 0 else float(n_requests),
        duration_s=duration,
        requests=n_requests,
        ok=outcomes.count("ok"),
        errors=outcomes.count("error"),
        shed=outcomes.count("shed"),
        latencies_s=latencies,
        send_lag_s=np.zeros(0),
    )
