"""URL-addressed worker transports: pipes, Unix sockets, TCP sockets.

Until this module existed the shard-worker wire protocol
(:mod:`repro.serve.wire`) only ever ran over one medium — the
stdin/stdout pipes of a child the parent had just spawned — and the
plumbing (stream handles, frame reads, broken-pipe handling, exit-code
crash detection) was inlined in
:class:`~repro.serve.workers.ProcessShardWorker`.  That works for one
machine; a fleet spanning hosts needs the same frames over real
sockets, and a transport the parent did not spawn cannot be declared
dead by ``waitpid``.

:class:`Transport` is the seam: a tiny connection-oriented surface —
``send_chunks`` / ``send_pickle`` / ``recv_frame`` / ``close`` — that
carries the existing length-prefixed frame stream (pickle v1 control
frames and v2 zero-copy bulk frames, byte-identical to the pipe
protocol) over any medium, addressed by URL:

- ``pipe://``            — parent<->child stdio pipes (the local fast
  path; spawn semantics stay with the worker classes);
- ``shm://``             — stdio pipes for framing plus a pair of
  preallocated :class:`ShmRing` shared-memory slab rings for bulk
  array payloads (the fastest local path; see below);
- ``unix:///path/sock``  — a Unix-domain socket (same-host daemons);
- ``tcp://host:port``    — a TCP socket (multi-host fleets; Nagle is
  disabled so micro-batched request frames are not coalesced against
  the latency SLO).

**Shared-memory rings.**  ``shm://`` keeps the pipe for control flow
and frame ordering but stops copying array payloads through it: each
direction gets a file-backed ``mmap`` ring of fixed-size slabs (a file
under ``/dev/shm`` when the host has one), the sender places payload
bytes into consecutive slabs (:meth:`ShmRing.place`) and ships a v2
frame whose array specs carry ``[offset, nbytes]`` refs instead of
in-band bytes (:func:`repro.serve.wire.encode_v2_shm`), and the
receiver maps them back as zero-copy views.  No per-slab bookkeeping
is needed because the worker protocol is strictly one request / one
reply in order per transport and receivers copy results out at the API
boundary before the next send — by the time a writer's bump cursor
wraps, the previous frame's refs are dead.  Frames that don't fit the
ring fall back to in-band v2 automatically (capacity bounds memory,
never message size).  ``multiprocessing.shared_memory`` is avoided on
purpose: its resource tracker unlinks attached segments on exit in the
supported 3.10–3.12 range (bpo-38119); a plain file + ``mmap`` has
none of that magic and unlinks exactly once, in the owner's
``_release``.

Peer-death detection is the part that genuinely changes across media.
A spawned child's death is visible out-of-band (``poll``/``waitpid``
plus EOF on the pipe); a remote peer offers only the byte stream, so
this module layers two in-band signals:

- **torn stream** — EOF at a frame boundary is a clean close
  (``recv_frame`` returns ``None``); EOF *inside* a frame means the
  peer vanished mid-message and raises :class:`PeerGone` (the partial
  frame cannot be completed, and the connection is marked broken);
- **deadlines** — ``recv_frame(timeout_s=...)`` bounds how long a
  caller waits on a silent peer and raises :class:`TransportTimeout`.
  A timeout *poisons* the transport (the stream position may be
  mid-frame, so no further traffic can be framed safely): callers
  reconnect, they do not retry on the same socket.  Heartbeats build
  on this — :meth:`Transport.request` with a short deadline is the
  probe the control plane uses to detect silently-dead peers between
  requests (see ``ShardedFleet.heartbeat``).

Both socket flavors expose the same buffered-file read side that
:func:`repro.serve.wire.read_frame` already consumes, so the codec —
and its zero-copy properties — is reused unchanged.  The v2 frame's
first chunk (header + JSON meta) and its raw array payloads are
written with one ``sendall`` per chunk, never concatenated through an
intermediate copy.
"""

from __future__ import annotations

import contextlib
import dataclasses
import mmap
import os
import selectors
import socket
import time
from pathlib import Path
from typing import Iterable

from . import wire

__all__ = [
    "PeerGone",
    "PipeTransport",
    "ShmRing",
    "SocketTransport",
    "Transport",
    "TransportError",
    "TransportListener",
    "TransportTimeout",
    "TransportURL",
    "connect",
    "parse_url",
    "shm_ring_dir",
]

SCHEMES = ("pipe", "shm", "tcp", "unix")

# shm ring geometry defaults: 16 slabs x 256 KiB = 4 MiB per direction,
# comfortably above the largest smoke-fleet rollout reply while staying
# irrelevant next to the engine's own buffers
DEFAULT_SHM_SLOTS = 16
DEFAULT_SHM_SLAB_BYTES = 256 * 1024
_SHM_ALIGN = 64  # per-array alignment inside the ring (cache line)


class TransportError(ConnectionError):
    """Base class for transport-layer failures."""


class PeerGone(TransportError):
    """The peer closed or died: EOF mid-frame, reset, or broken pipe."""


class TransportTimeout(TransportError):
    """A receive deadline expired; the transport is no longer framed."""


@dataclasses.dataclass(frozen=True)
class TransportURL:
    """One parsed transport address.

    ``host``/``port`` are set for ``tcp``, ``path`` for ``unix``;
    ``pipe`` URLs carry neither (the address *is* the child's stdio).
    """

    scheme: str
    host: str | None = None
    port: int | None = None
    path: str | None = None

    def __str__(self) -> str:
        if self.scheme == "tcp":
            return f"tcp://{self.host}:{self.port}"
        if self.scheme == "unix":
            return f"unix://{self.path}"
        return f"{self.scheme}://"


def parse_url(url: str | TransportURL) -> TransportURL:
    """Parse ``pipe://`` / ``unix:///path`` / ``tcp://host:port``.

    ``tcp`` port 0 is allowed for listeners (the OS assigns an
    ephemeral port; read :attr:`TransportListener.url` for the bound
    address).
    """
    if isinstance(url, TransportURL):
        return url
    scheme, sep, rest = url.partition("://")
    if not sep or scheme not in SCHEMES:
        raise ValueError(f"unsupported transport URL {url!r} (schemes: {', '.join(SCHEMES)})")
    if scheme in ("pipe", "shm"):
        if rest:
            raise ValueError(f"{scheme} transport takes no address, got {url!r}")
        return TransportURL(scheme=scheme)
    if scheme == "unix":
        if not rest.startswith("/"):
            raise ValueError(f"unix transport needs an absolute path, got {url!r}")
        return TransportURL(scheme="unix", path=rest)
    host, sep, port = rest.rpartition(":")
    if not sep or not host:
        raise ValueError(f"tcp transport needs host:port, got {url!r}")
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(f"tcp port must be an integer, got {url!r}") from None
    if not 0 <= port_num <= 0xFFFF:
        raise ValueError(f"tcp port out of range in {url!r}")
    return TransportURL(scheme="tcp", host=host, port=port_num)


class ShmRing:
    """A preallocated ring of shared-memory slabs for bulk payloads.

    One ring serves one direction of one transport: exactly one process
    writes it (via :meth:`place`) and exactly one reads it (via
    :attr:`buf`, through ``np.frombuffer`` in the wire codec).  A
    message's payload blocks are copied into consecutive 64-byte-aligned
    positions starting at a slab boundary; the bump cursor wraps to slab
    0 when the next message would run off the end, which is safe because
    the worker protocol keeps at most one frame in flight per direction
    (see the module docstring).  ``place`` returns ``None`` when a
    message is bigger than the whole ring — the caller falls back to an
    in-band frame.

    The backing store is a plain file (created under ``/dev/shm`` when
    available) mapped with ``mmap`` — *not*
    ``multiprocessing.shared_memory``, whose resource tracker unlinks
    attached segments on process exit in 3.10–3.12.  The creating side
    passes ``create=True`` and later ``close(unlink=True)``; attaching
    sides open the existing file and just ``close()``.
    """

    def __init__(
        self,
        path: str,
        slots: int = DEFAULT_SHM_SLOTS,
        slab_bytes: int = DEFAULT_SHM_SLAB_BYTES,
        create: bool = False,
    ):
        self.path = str(path)
        self.slots = int(slots)
        self.slab_bytes = int(slab_bytes)
        if self.slots < 1:
            raise ValueError(f"shm ring needs at least one slab, got {self.slots}")
        if self.slab_bytes < _SHM_ALIGN or self.slab_bytes % _SHM_ALIGN:
            raise ValueError(f"slab size must be a positive multiple of {_SHM_ALIGN}, got {self.slab_bytes}")
        self.nbytes = self.slots * self.slab_bytes
        fd = os.open(self.path, os.O_RDWR | (os.O_CREAT if create else 0), 0o600)
        try:
            if create:
                os.ftruncate(fd, self.nbytes)
            elif os.fstat(fd).st_size < self.nbytes:
                raise ValueError(
                    f"shm ring file {self.path} is {os.fstat(fd).st_size} bytes, need {self.nbytes}"
                )
            self._mm = mmap.mmap(fd, self.nbytes)
        finally:
            os.close(fd)
        self.buf = self._mm  # the receive-side buffer np.frombuffer maps over
        self._cursor = 0  # next free slab index (writer side only)
        self._closed = False

    def place(self, blocks) -> list[int] | None:
        """Copy payload blocks into the ring; their byte offsets, or ``None``.

        ``blocks`` are buffer objects (memoryviews of array memory).
        All blocks of one message land in one consecutive slab run so a
        single wrap check covers the whole message.
        """
        rel = []
        total = 0
        for block in blocks:
            rel.append(total)
            total += -(-block.nbytes // _SHM_ALIGN) * _SHM_ALIGN
        need = -(-total // self.slab_bytes)
        if need > self.slots:
            return None
        if self._cursor + need > self.slots:
            self._cursor = 0  # wrap: the previous frame has been consumed
        base = self._cursor * self.slab_bytes
        self._cursor += need
        for block, offset in zip(blocks, rel):
            self._mm[base + offset : base + offset + block.nbytes] = block
        return [base + offset for offset in rel]

    def close(self, unlink: bool = False) -> None:
        """Unmap the ring; the creating side also unlinks the backing file.

        Mapped views handed out earlier (decoded arrays not yet copied)
        keep the pages alive until they are garbage collected — mmap
        close only fails if a view is *actively* exported, in which case
        the unmap is skipped and retried implicitly at GC.
        """
        if self._closed:
            return
        self._closed = True
        with contextlib.suppress(BufferError, ValueError):
            self._mm.close()
        if unlink:
            with contextlib.suppress(OSError):
                os.unlink(self.path)

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        return f"ShmRing(path={self.path!r}, slots={self.slots}, slab_bytes={self.slab_bytes})"


def shm_ring_dir() -> str:
    """Directory for ring backing files: ``/dev/shm`` when the host has one.

    Falling back to the default temp dir keeps ``shm://`` working on
    hosts without a tmpfs mount — the mapping is still shared memory;
    only eviction-to-disk behavior differs under memory pressure.
    """
    if os.path.isdir("/dev/shm"):
        return "/dev/shm"
    import tempfile

    return tempfile.gettempdir()


class Transport:
    """One framed, bidirectional connection to a peer.

    Subclasses provide the raw streams; framing, torn-stream
    detection and deadline bookkeeping live here.  Not thread-safe:
    callers serialize request/reply pairs per transport (the worker
    protocol is strictly one reply per request, in order).
    """

    peer: str = "?"
    # shm rings for bulk payloads (attach_shm); class attrs so plain
    # pipe/socket transports pay nothing for the feature existing
    _shm_tx: ShmRing | None = None
    _shm_rx: ShmRing | None = None

    # -- raw stream hooks (subclass responsibility) --------------------
    def _write(self, chunk) -> None:
        raise NotImplementedError

    def _flush(self) -> None:
        raise NotImplementedError

    def _read_stream(self):
        """The buffered binary read side frames are decoded from."""
        raise NotImplementedError

    def _set_read_timeout(self, timeout_s: float | None) -> None:
        """Arm (or clear) the receive deadline; may be a no-op."""

    def close(self) -> None:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError

    # -- framing -------------------------------------------------------
    def send_chunks(self, chunks: Iterable) -> None:
        """Write pre-encoded frame chunks (header + raw array buffers)."""
        try:
            for chunk in chunks:
                self._write(chunk)
            self._flush()
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            raise PeerGone(f"peer {self.peer} gone while sending: {exc}") from exc

    def send_pickle(self, payload) -> None:
        """Write one v1 (pickled) frame."""
        body = wire.pickle_body(payload)
        self.send_chunks([wire.frame_header(len(body)), body])

    def attach_shm(self, tx: ShmRing | None = None, rx: ShmRing | None = None) -> None:
        """Route bulk v2 payloads through shared-memory rings.

        ``tx`` is the ring this side writes (:meth:`send_v2` payloads),
        ``rx`` the ring the peer writes (resolved by
        :meth:`recv_frame`'s decode).  Both sides of a connection attach
        the same two rings with the roles swapped.
        """
        self._shm_tx = tx
        self._shm_rx = rx

    def send_v2(self, kind: str, meta: dict, arrays) -> None:
        """Write one v2 frame, via the attached shm ring when it fits.

        Encoding happens before any bytes hit the stream on both paths,
        so a ``TypeError`` from non-v2-expressible content still leaves
        the stream clean for the caller's pickle fallback.
        """
        if self._shm_tx is not None and not self._shm_tx.closed:
            chunks = wire.encode_v2_shm(kind, meta, arrays, self._shm_tx)
            if chunks is not None:
                self.send_chunks(chunks)
                return
        self.send_chunks(wire.encode_v2(kind, meta, arrays))

    def recv_frame(self, timeout_s: float | None = None):
        """Read one frame; ``None`` means the peer closed cleanly.

        Raises :class:`PeerGone` when the stream ends inside a frame
        (the peer died mid-message) and :class:`TransportTimeout` when
        ``timeout_s`` elapses first.  Either error leaves the stream
        unframed — abandon the transport and reconnect.
        """
        self._set_read_timeout(timeout_s)
        stream = self._read_stream()
        try:
            header = wire.read_exact(stream, wire.LENGTH_PREFIX_SIZE)
            if header is None:
                return None  # clean EOF at a frame boundary
            length = wire.frame_length(header)
            body = wire.read_exact(stream, length)
        except (socket.timeout, TimeoutError) as exc:
            raise TransportTimeout(
                f"no frame from {self.peer} within {timeout_s:.3f}s"
            ) from exc
        except (ConnectionError, OSError, ValueError) as exc:
            # ValueError: reading a stream another timeout already broke
            raise PeerGone(f"peer {self.peer} gone while receiving: {exc}") from exc
        finally:
            self._set_read_timeout(None)
        if body is None:
            raise PeerGone(f"peer {self.peer} vanished mid-frame (partial frame discarded)")
        return wire.decode_body(body, shm=self._shm_rx)

    def request(self, payload, timeout_s: float | None = None):
        """One pickled round-trip; the building block for heartbeats.

        A ``None`` reply (peer closed instead of answering) is
        promoted to :class:`PeerGone` — a request must be answered.
        """
        return self.request_with(lambda t: t.send_pickle(payload), timeout_s=timeout_s)

    def request_with(self, send, timeout_s: float | None = None):
        """A round-trip whose request ``send(transport)`` writes itself.

        Same reply semantics as :meth:`request`; used by callers that
        pre-encode their frames (the v2 zero-copy path).
        """
        send(self)
        reply = self.recv_frame(timeout_s=timeout_s)
        if reply is None:
            raise PeerGone(f"peer {self.peer} closed instead of replying")
        return reply

    def wait_readable(self, timeout_s: float | None = None) -> bool:
        """Block until the next frame's first byte is available.

        Unlike a :meth:`recv_frame` deadline this never consumes bytes,
        so a ``False`` return (nothing arrived in time) leaves the
        stream framed and the transport fully usable — it is the idle
        wait for server accept loops that must poll a stop flag between
        requests without poisoning the connection.  Buffered read-ahead
        from a previous frame counts as readable.
        """
        return True  # base: no poll support, let recv_frame block

    def __enter__(self) -> Transport:
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PipeTransport(Transport):
    """The frame stream over a pair of OS pipes (or any binary streams).

    The local fast path: exactly the plumbing
    :class:`~repro.serve.workers.ProcessShardWorker` always used, now
    behind the :class:`Transport` surface.  Receive deadlines are
    honored via ``select`` on the read end when it is a real pipe;
    in-memory streams (tests) skip the poll.
    """

    def __init__(self, write_stream, read_stream, peer: str = "pipe"):
        self._wr = write_stream
        self._rd = read_stream
        self.peer = peer
        self._closed = False
        self._deadline_s: float | None = None

    def _write(self, chunk) -> None:
        self._wr.write(chunk)

    def _flush(self) -> None:
        self._wr.flush()

    def _read_stream(self):
        if self._deadline_s is None:
            return self._rd
        return _DeadlineReader(self._rd, self._deadline_s)

    def _set_read_timeout(self, timeout_s: float | None) -> None:
        self._deadline_s = None if timeout_s is None else time.monotonic() + timeout_s

    def wait_readable(self, timeout_s: float | None = None) -> bool:
        try:
            fd = self._rd.fileno()
        except (AttributeError, OSError, ValueError):
            return True  # in-memory stream (tests): reads cannot block
        if _buffered_ready(self._rd, fd):
            return True
        return _fd_readable(fd, timeout_s)

    def close(self) -> None:
        self._closed = True
        for stream in (self._wr, self._rd):
            with contextlib.suppress(OSError, ValueError):
                stream.close()

    @property
    def closed(self) -> bool:
        return self._closed


class _DeadlineReader:
    """Wrap a pipe's read side with a ``select``-based deadline.

    ``read`` blocks at most until the deadline; hitting it raises
    ``TimeoutError``, which :meth:`Transport.recv_frame` maps to
    :class:`TransportTimeout`.  Streams without a file descriptor
    (BytesIO in tests) cannot block, so they read straight through.
    """

    def __init__(self, stream, deadline_s: float):
        self._stream = stream
        self._deadline_s = deadline_s
        try:
            self._fd = stream.fileno()
        except (AttributeError, OSError, ValueError):
            self._fd = None

    def read(self, n: int) -> bytes:
        # buffered read-ahead first: select() only sees the fd
        if self._fd is not None and not _buffered_ready(self._stream, self._fd):
            remaining = self._deadline_s - time.monotonic()
            if remaining <= 0 or not _fd_readable(self._fd, remaining):
                raise TimeoutError("pipe read deadline expired")
        return self._stream.read(n)


def _fd_readable(fd: int, timeout_s: float | None) -> bool:
    """``select`` one fd for reading; ``None`` waits forever."""
    with selectors.DefaultSelector() as sel:
        sel.register(fd, selectors.EVENT_READ)
        return bool(sel.select(timeout_s))


def _buffered_ready(stream, fd: int) -> bool:
    """Whether ``stream`` holds read-ahead bytes a poll on ``fd`` misses.

    ``BufferedReader.read`` pulls whole kernel chunks, so the start of
    the next frame may already sit in userspace while the fd polls
    empty.  Probing with the fd briefly non-blocking makes ``peek``
    return the buffer without issuing a blocking raw read.
    """
    peek = getattr(stream, "peek", None)
    if peek is None:
        return False  # raw stream: no read-ahead to miss
    try:
        os.set_blocking(fd, False)
    except OSError:
        return False
    try:
        return len(peek(1)) > 0
    except (BlockingIOError, OSError, ValueError):
        return False
    finally:
        with contextlib.suppress(OSError):
            os.set_blocking(fd, True)


class SocketTransport(Transport):
    """The frame stream over a connected TCP or Unix socket."""

    def __init__(self, sock: socket.socket, peer: str | None = None):
        sock.settimeout(None)  # blocking by default; deadlines are per-recv
        if sock.family == socket.AF_INET:
            with contextlib.suppress(OSError):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rd = sock.makefile("rb")
        self.peer = peer if peer is not None else _peer_name(sock)
        self._closed = False

    def _write(self, chunk) -> None:
        self._sock.sendall(chunk)

    def _flush(self) -> None:
        pass  # sendall already handed the bytes to the kernel

    def _read_stream(self):
        return self._rd

    def _set_read_timeout(self, timeout_s: float | None) -> None:
        self._sock.settimeout(timeout_s)

    def wait_readable(self, timeout_s: float | None = None) -> bool:
        if self._closed:
            return True  # let recv_frame surface the real error
        fd = self._sock.fileno()
        if fd < 0:
            return True
        if _buffered_ready(self._rd, fd):
            return True
        return _fd_readable(fd, timeout_s)

    def close(self) -> None:
        self._closed = True
        with contextlib.suppress(OSError):
            self._sock.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._rd.close()
        with contextlib.suppress(OSError):
            self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed


def _peer_name(sock: socket.socket) -> str:
    try:
        peer = sock.getpeername()
    except OSError:
        return "?"
    if isinstance(peer, tuple):
        return f"tcp://{peer[0]}:{peer[1]}"
    return f"unix://{peer or '?'}"


def connect(
    url: str | TransportURL,
    timeout_s: float = 10.0,
    retry_interval_s: float = 0.05,
) -> SocketTransport:
    """Dial a socket URL, retrying refused connections until ``timeout_s``.

    Retrying here (rather than in every caller) is what makes
    restart-by-reconnect races benign: a worker that is still binding
    its listener — or being respawned after a crash — turns into a
    short wait instead of an error.  Raises :class:`TransportError`
    when the deadline passes without a connection.
    """
    parsed = parse_url(url)
    if parsed.scheme in ("pipe", "shm"):
        raise ValueError(f"{parsed.scheme}:// has no dialable address; spawn the worker instead")
    deadline = time.monotonic() + timeout_s
    last_error: Exception | None = None
    while True:
        remaining = max(deadline - time.monotonic(), 0.001)
        try:
            if parsed.scheme == "tcp":
                sock = socket.create_connection((parsed.host, parsed.port), timeout=remaining)
            else:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(remaining)
                sock.connect(parsed.path)
            return SocketTransport(sock, peer=str(parsed))
        except (ConnectionError, FileNotFoundError, socket.timeout, TimeoutError, OSError) as exc:
            last_error = exc
        if time.monotonic() >= deadline:
            raise TransportError(f"could not connect to {parsed} within {timeout_s:.1f}s: {last_error}")
        time.sleep(retry_interval_s)


class TransportListener:
    """Bind a socket URL and accept :class:`SocketTransport` peers.

    ``tcp://host:0`` binds an ephemeral port — read :attr:`url` for
    the resolved address to hand to clients.  Stale Unix socket files
    are replaced (the daemon that owned them is gone by definition:
    binding an *active* one raises ``EADDRINUSE`` like TCP does).
    """

    def __init__(self, url: str | TransportURL, backlog: int = 16):
        parsed = parse_url(url)
        if parsed.scheme in ("pipe", "shm"):
            raise ValueError(f"{parsed.scheme}:// cannot listen; it is a spawn-time transport")
        if parsed.scheme == "tcp":
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((parsed.host, parsed.port))
            host, port = sock.getsockname()[:2]
            self.url = TransportURL(scheme="tcp", host=parsed.host, port=port)
        else:
            path = Path(parsed.path)
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.bind(parsed.path)
            except OSError:
                # a leftover socket file from a dead process; probe it
                # and only steal the address if nothing answers
                probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    probe.connect(parsed.path)
                except OSError:
                    path.unlink(missing_ok=True)
                    sock.bind(parsed.path)
                else:
                    probe.close()
                    sock.close()
                    raise TransportError(f"{parsed} is already served by a live process")
                finally:
                    probe.close()
            self.url = parsed
        sock.listen(backlog)
        self._sock = sock
        self._closed = False

    def accept(self, timeout_s: float | None = None) -> SocketTransport:
        """Block for the next peer; :class:`TransportTimeout` on deadline."""
        try:
            self._sock.settimeout(timeout_s)
            peer_sock, _ = self._sock.accept()
        except (socket.timeout, TimeoutError) as exc:
            raise TransportTimeout(f"no connection on {self.url} within {timeout_s:.3f}s") from exc
        except OSError as exc:
            raise TransportError(f"listener on {self.url} closed: {exc}") from exc
        return SocketTransport(peer_sock)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with contextlib.suppress(OSError):
            self._sock.close()
        if self.url.scheme == "unix":
            with contextlib.suppress(OSError):
                os.unlink(self.url.path)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> TransportListener:
        return self

    def __exit__(self, *exc) -> None:
        self.close()
