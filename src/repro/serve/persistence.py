"""Durable per-cell serving state: append-only journal with compaction.

The physics-state recursion at the heart of the paper's Branch 2 makes
serving *stateful*: each cell's next prediction consumes its last SoC,
so an engine restart that forgets per-cell state breaks the recursion
(every cell would need a fresh Branch 1 estimate, discarding the
accumulated trajectory).  :class:`StateJournal` makes that state
durable with the classic write-ahead pattern:

- every mutation of a :class:`~repro.serve.engine.CellState` appends a
  one-line JSON record to an append-only file (``cell`` ops);
- fleet rollouts additionally stream their per-window recursion state
  (``w`` ops, one per cell per window) behind a ``rollout`` marker, so
  a crash mid-rollout loses at most the window being computed;
- :meth:`compact` rewrites the file down to one record per live cell
  (plus any in-flight rollout progress) via an atomic replace, and
  runs automatically every ``compact_every`` appended records;
- with ``max_segment_bytes`` set, the journal **rotates**: when the
  active file crosses the limit it is sealed in place as
  ``<name>.00001.jsonl`` (monotonically numbered) and a fresh active
  file begins.  Replay walks the sealed segments in order, then the
  active file; compaction collapses everything back into one active
  file.  Rotation is what keeps a single append target small enough
  for >1M-cell fleets: sealing is one ``rename`` (no data copied), and
  compaction cost is bounded by *live* state, not append history;
- with ``archive`` set to an :class:`~repro.serve.archive.ArchiveStore`,
  sealed segments are **shipped to the cold store** and deleted
  locally — the hot directory holds only the active file.  Replay
  fetches archived segments back first (so a journal restores on a
  host that never wrote it; see
  :func:`repro.serve.archive.restore_from_archive`), and a gap in the
  archived numbering raises
  :class:`~repro.serve.archive.MissingSegmentError` — replaying around
  a missing segment would silently corrupt state.

JSON floats round-trip ``float`` values exactly (``repr`` precision),
which is what lets :meth:`FleetEngine.restore
<repro.serve.engine.FleetEngine.restore>` followed by
``resume_rollout_fleet`` reproduce an uninterrupted rollout bit for
bit.  A torn final line (crash mid-write) is tolerated on replay —
only in the *active* file, the one a crash can tear; sealed segments
must parse cleanly — and corruption anywhere else raises.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
from pathlib import Path
from typing import Iterable

from .engine import CellState

__all__ = ["JournalSnapshot", "StateJournal", "JOURNAL_FORMAT_VERSION"]

# v2 added the `compact` op (state-reset marker written by compaction)
# and segment rotation; older readers see the version header and reject
# the file cleanly instead of reporting the unknown op as corruption.
# v1 files remain readable.
JOURNAL_FORMAT_VERSION = 2


@dataclasses.dataclass
class JournalSnapshot:
    """Materialized journal contents.

    Attributes
    ----------
    cells:
        Latest journaled state per cell.
    windows:
        Per-cell rollout progress of the most recent fleet rollout:
        ``{cell_id: {window: soc}}`` with window 0 the initial
        (Branch 1) estimate.  Empty for cells that were not part of it.
    step_s:
        Step size of that rollout (``None`` when none was journaled).
    """

    cells: dict[str, CellState]
    windows: dict[str, dict[int, float]]
    step_s: float | None


class StateJournal:
    """Append-only, compacting journal of fleet serving state.

    Parameters
    ----------
    path:
        Journal file; created (with a format-version header) when
        missing, replayed into memory when present so an engine can
        pick up exactly where a previous process stopped.
    compact_every:
        Auto-compact after this many appended records (0 disables
        automatic compaction; :meth:`compact` stays available).
    fsync:
        ``os.fsync`` the file after every flushed batch (default off).
        The default survives process crashes — the engine's guarantee —
        at one flush per *batch* of records; turn this on to also
        survive OS/power failure, paying one disk sync per batch
        (which is exactly why appends are batched: the cost is per
        flush, not per record).
    max_segment_bytes:
        Roll the active file into a sealed, numbered segment once it
        grows past this size (0, the default, disables rotation).  The
        check runs per flushed batch, so a segment may overshoot by up
        to one batch.
    archive:
        Optional :class:`~repro.serve.archive.ArchiveStore`: sealed
        segments are shipped there on rotation and removed locally;
        replay fetches any archived segments back before reading.
        Shipping happens on the append path, so a down store surfaces
        as an :class:`~repro.serve.archive.ArchiveError` on the append
        that triggered rotation — state is never silently un-archived.
    """

    def __init__(
        self,
        path: str | Path,
        compact_every: int = 65536,
        fsync: bool = False,
        max_segment_bytes: int = 0,
        archive=None,
    ):
        if compact_every < 0:
            raise ValueError("compact_every cannot be negative")
        if max_segment_bytes < 0:
            raise ValueError("max_segment_bytes cannot be negative")
        self.path = Path(path)
        self.compact_every = compact_every
        self.fsync = fsync
        self.max_segment_bytes = int(max_segment_bytes)
        self.archive = archive
        self._cells: dict[str, dict] = {}
        self._windows: dict[str, dict[int, float]] = {}
        self._step_s: float | None = None
        self._appended = 0  # records since the last compaction
        self._scope_depth = 0
        self._fh = None
        if self.archive is not None:
            self._fetch_archived_segments()
        for segment in self.segments():
            self._load_file(segment, allow_torn=False)
            if self.archive is not None:
                # local copies of shipped segments are cache, not record:
                # drop them once replayed so the hot tier stays one file
                segment.unlink()
        if self.path.exists():
            self._load_file(self.path, allow_torn=True)
        self._open()
        if self._fresh:
            self._append({"op": "journal", "version": JOURNAL_FORMAT_VERSION})

    # -- appending -----------------------------------------------------
    def append_cell(self, state: CellState) -> None:
        """Journal the latest state of one cell (a ``cell`` op)."""
        self.append_cells([state])

    def append_cells(self, states: Iterable[CellState]) -> None:
        """Journal many cells' latest states with one write + flush.

        The batched counterpart of :meth:`append_cell`: a fleet-wide
        ``estimate``/``predict``/rollout commit journals every touched
        cell in a single syscall (and, with ``fsync`` enabled, a single
        disk sync) instead of one per cell.
        """
        records = []
        for state in states:
            record = {
                "op": "cell",
                "id": state.cell_id,
                "chem": state.chemistry,
                "key": state.model_key,
                "soc": state.soc,
                "seen": state.last_seen_s,
                "n": state.n_requests,
            }
            self._cells[state.cell_id] = record
            records.append(record)
        self._append_many(records)

    def drop_cell(self, cell_id: str) -> None:
        """Journal the removal of a cell (a ``drop`` op)."""
        self._cells.pop(cell_id, None)
        self._windows.pop(cell_id, None)
        self._append({"op": "drop", "id": cell_id})

    def begin_rollout(self, step_s: float) -> None:
        """Mark the start of a fleet rollout, clearing prior progress.

        Inside an open :meth:`rollout_scope` this is a no-op (the scope
        already wrote the marker), so sharded fleets journal one marker
        per fleet rollout rather than one per shard.
        """
        if self._scope_depth > 0:
            if self._step_s is not None and step_s != self._step_s:
                raise ValueError(f"nested rollout step {step_s!r} != scope step {self._step_s!r}")
            return
        self._windows.clear()
        self._step_s = float(step_s)
        self._append({"op": "rollout", "step_s": float(step_s)})

    @contextlib.contextmanager
    def rollout_scope(self, step_s: float):
        """Context manager marking one fleet rollout across many engines."""
        self.begin_rollout(step_s)
        self._scope_depth += 1
        try:
            yield self
        finally:
            self._scope_depth -= 1

    def append_window(self, cell_id: str, window: int, soc: float) -> None:
        """Journal one cell's rollout state after ``window`` (a ``w`` op)."""
        self.append_windows([(cell_id, window, soc)])

    def append_windows(self, updates: Iterable[tuple]) -> None:
        """Journal many cells' rollout states with one write + flush.

        Each update is ``(cell_id, window, soc)`` or the extended
        7-tuple ``(cell_id, window, soc, i_avg, temp_avg, horizon_s,
        capacity_ah)`` which additionally records the workload that
        produced the window under the optional keys ``i``/``t``/``h``/
        ``c`` — replay ignores them (only ``soc`` matters for crash
        recovery), but the offline learner harvests them into training
        rows (:mod:`repro.learn.harvest`).  Compaction keeps only the
        SoC, so workload history lives in the raw (or archived)
        segments.

        The durability guarantee is per *committed window batch* — a
        crash loses at most the in-flight window — so flushing once per
        batch keeps the same crash semantics at 1/N the syscalls of
        per-record appends (a journaled 100k-cell rollout would
        otherwise flush millions of times).
        """
        records = []
        for update in updates:
            cell_id, window, soc = update[0], update[1], update[2]
            self._windows.setdefault(cell_id, {})[int(window)] = float(soc)
            record = {"op": "w", "id": cell_id, "w": int(window), "soc": float(soc)}
            if len(update) > 3:
                i_avg, temp_avg, horizon_s, capacity_ah = update[3:7]
                record["i"] = float(i_avg)
                record["t"] = float(temp_avg)
                record["h"] = float(horizon_s)
                record["c"] = float(capacity_ah)
            records.append(record)
        self._append_many(records)

    # -- reading -------------------------------------------------------
    def snapshot(self) -> JournalSnapshot:
        """Current journal contents as detached copies."""
        cells = {
            cid: CellState(
                cell_id=r["id"],
                chemistry=r["chem"],
                model_key=r["key"],
                soc=r["soc"],
                last_seen_s=r["seen"],
                n_requests=r["n"],
            )
            for cid, r in self._cells.items()
        }
        windows = {cid: dict(ws) for cid, ws in self._windows.items() if ws}
        return JournalSnapshot(cells=cells, windows=windows, step_s=self._step_s)

    def __len__(self) -> int:
        """Number of live cells in the journal."""
        return len(self._cells)

    def size_bytes(self) -> int:
        """On-disk size of the journal (active file plus sealed segments)."""
        self._fh.flush()
        return self.path.stat().st_size + sum(seg.stat().st_size for seg in self.segments())

    # -- segment rotation ----------------------------------------------
    def segments(self) -> list[Path]:
        """Local sealed segment files, oldest first (empty without rotation).

        With an ``archive``, sealed segments live in the cold store —
        see :meth:`archived_segments` — and this is (transiently) empty.
        """
        found = []
        for candidate in self.path.parent.glob(f"{self.path.name}.*.jsonl"):
            index = self._segment_index(candidate.name)
            if index is not None:
                found.append((index, candidate))
        return [path for _, path in sorted(found)]

    def archived_segments(self) -> list[str]:
        """Names of this journal's segments in the cold store, oldest first."""
        if self.archive is None:
            return []
        names = []
        for name in self.archive.list(prefix=f"{self.path.name}."):
            index = self._segment_index(name)
            if index is not None:
                names.append((index, name))
        return [name for _, name in sorted(names)]

    def _segment_index(self, name: str) -> int | None:
        if not (name.startswith(f"{self.path.name}.") and name.endswith(".jsonl")):
            return None
        stem = name[len(self.path.name) + 1 : -len(".jsonl")]
        return int(stem) if stem.isdigit() else None

    def _segment_path(self, index: int) -> Path:
        return self.path.with_name(f"{self.path.name}.{index:05d}.jsonl")

    def _fetch_archived_segments(self) -> None:
        """Pull archived segments down for replay; reject gappy history.

        Runs before local replay: the union of archived and local
        segment numbers must be contiguous from 1 (a journal's state
        is the *ordered* record union — replaying around a hole would
        silently resurrect dropped cells), so a missing segment raises
        :class:`~repro.serve.archive.MissingSegmentError` instead of
        restoring wrong state.  Segments already local (a crash
        between ship and unlink) are not re-fetched.
        """
        from .archive import MissingSegmentError

        local = {self._segment_index(path.name) for path in self.segments()}
        archived = {self._segment_index(name) for name in self.archived_segments()}
        indices = sorted(local | archived)
        if indices:
            expected = list(range(1, indices[-1] + 1))
            if indices != expected:
                missing = sorted(set(expected) - set(indices))
                raise MissingSegmentError(
                    f"journal {self.path.name} history has gaps: missing segment(s) "
                    f"{missing} (have {indices})"
                )
        for index in indices:
            if index not in local:
                self.archive.fetch(self._segment_path(index).name, self._segment_path(index))
        self._next_segment_index = (indices[-1] + 1) if indices else 1

    def _rotate(self) -> None:
        """Seal the active file as the next numbered segment.

        One ``rename`` — no data moves — then a fresh active file
        opens with its own format header.  With an ``archive``, the
        sealed segment is shipped to the cold store and the local copy
        deleted (ship-then-unlink: a crash in between leaves a
        harmless duplicate, never a gap).  Called from the append path
        once the active file crosses ``max_segment_bytes``.
        """
        self._fh.close()
        next_index = getattr(self, "_next_segment_index", None)
        if next_index is None:
            existing = self.segments()
            next_index = (self._segment_index(existing[-1].name) + 1) if existing else 1
        sealed = self._segment_path(next_index)
        os.replace(self.path, sealed)
        self._next_segment_index = next_index + 1
        if self.archive is not None:
            self.archive.put(sealed.name, sealed)
            sealed.unlink()
        self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps({"op": "journal", "version": JOURNAL_FORMAT_VERSION}) + "\n")
        self._fh.flush()

    # -- compaction ----------------------------------------------------
    def compact(self) -> None:
        """Rewrite the journal to its minimal equivalent state, atomically.

        Keeps one ``cell`` record per live cell plus the in-flight
        rollout marker and per-window progress (so a resume after a
        crash-during-compaction or post-compaction restart still has
        the full prefix).  The replacement is a write-to-temp +
        ``os.replace``, so a crash mid-compaction leaves either the old
        or the new file, never a torn one.

        A rotated journal collapses back to a single active file: the
        compacted file opens with a ``compact`` marker — "the state
        resets here" — so replay discards anything from sealed
        segments a crash may have left behind, then the stale segments
        are deleted.  (Unlink-after-replace is the crash-safe order:
        the marker makes leftover segments harmless, whereas deleting
        first would lose history if the replace never happened.)
        """
        tmp = self.path.with_suffix(self.path.suffix + ".compact")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"op": "journal", "version": JOURNAL_FORMAT_VERSION}) + "\n")
            fh.write(json.dumps({"op": "compact"}) + "\n")
            for cid in sorted(self._cells):
                fh.write(json.dumps(self._cells[cid]) + "\n")
            if self._step_s is not None and any(self._windows.values()):
                fh.write(json.dumps({"op": "rollout", "step_s": self._step_s}) + "\n")
                for cid in sorted(self._windows):
                    for w in sorted(self._windows[cid]):
                        record = {"op": "w", "id": cid, "w": w, "soc": self._windows[cid][w]}
                        fh.write(json.dumps(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if self._fh is not None:
            self._fh.close()
        os.replace(tmp, self.path)
        for segment in self.segments():
            segment.unlink()
        if self.archive is not None:
            # archived history is now redundant with the compacted file;
            # delete after the replace for the same crash-safe ordering
            for name in self.archived_segments():
                self.archive.delete(name)
        self._next_segment_index = 1
        self._appended = 0
        self._open()

    def close(self) -> None:
        """Flush and close the append handle (the journal stays reopenable)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> StateJournal:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _open(self) -> None:
        self._fresh = not self.path.exists() or self.path.stat().st_size == 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def _append(self, record: dict) -> None:
        self._append_many([record])

    def _append_many(self, records: list[dict]) -> None:
        if not records:
            return
        if self._fh is None:
            raise ValueError(f"journal {self.path} is closed")
        self._fh.write("".join(json.dumps(record) + "\n" for record in records))
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._appended += len(records)
        if self.max_segment_bytes and self._fh.tell() >= self.max_segment_bytes:
            self._rotate()
        if self.compact_every and self._appended >= self.compact_every:
            self.compact()

    def _load_file(self, path: Path, allow_torn: bool) -> None:
        """Replay one journal file (a sealed segment or the active file)."""
        data = path.read_bytes()
        lines = data.splitlines(keepends=True)
        offset = 0
        for k, raw_line in enumerate(lines):
            line = raw_line.decode("utf-8", errors="replace").strip()
            if not line:
                offset += len(raw_line)
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if allow_torn and k == len(lines) - 1:
                    # torn final line from a crash mid-write: truncate it
                    # away so the next append starts on a clean boundary
                    # instead of gluing onto the fragment
                    with open(path, "r+b") as fh:
                        fh.truncate(offset)
                    return
                raise ValueError(f"corrupt journal {path}: bad record on line {k + 1}")
            op = record.get("op")
            if op == "cell":
                self._cells[record["id"]] = record
            elif op == "drop":
                self._cells.pop(record["id"], None)
                self._windows.pop(record["id"], None)
            elif op == "rollout":
                self._windows.clear()
                self._step_s = float(record["step_s"])
            elif op == "w":
                self._windows.setdefault(record["id"], {})[int(record["w"])] = float(record["soc"])
            elif op == "compact":
                # everything before this marker was collapsed into the
                # records that follow; discard any state replayed from
                # segments a crash-during-compaction left behind
                self._cells.clear()
                self._windows.clear()
                self._step_s = None
            elif op == "journal":
                if record.get("version", 0) > JOURNAL_FORMAT_VERSION:
                    raise ValueError(
                        f"journal {path} uses format v{record['version']} "
                        f"(this build reads up to v{JOURNAL_FORMAT_VERSION})"
                    )
            else:
                raise ValueError(f"corrupt journal {path}: unknown op {op!r}")
            offset += len(raw_line)
