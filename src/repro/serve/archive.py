"""Cold-store archival for sealed :class:`StateJournal` segments.

Segment rotation (PR: journal tiering) keeps the *active* append file
small, but the sealed segments still accumulate on the serving host's
disk — a >1M-cell fleet spanning machines outgrows that long before it
outgrows the engine.  This module adds the cold tier: when a journal
built with ``StateJournal(path, archive=store)`` seals a segment, the
segment is **shipped** to the store and the local copy deleted, so the
hot directory holds exactly one active file per worker while history
lives wherever the store points (a shared directory today; the
:class:`ArchiveStore` surface is four methods precisely so an object
store can slot in without touching the journal).

Tiering lifecycle::

    append -> active file            (hot: one open handle, O(batch))
    rotate -> sealed  <name>.NNNNN.jsonl
           -> put() to the store, local copy unlinked     (cold)
    replay -> fetch() missing segments back, oldest first (restore)
    compact-> one collapsed active file; delete() archived
              segments (the `compact` marker makes stragglers
              harmless — see StateJournal.compact)

Replay is where correctness lives: a journal's state is the ordered
union of its segments plus the active file, so a **missing archived
segment is corruption**, not an inconvenience — replaying around a
gap would silently resurrect dropped cells or forget live ones.
:meth:`StateJournal.__init__ <repro.serve.persistence.StateJournal>`
therefore checks segment numbering is contiguous from 1 and raises
:class:`MissingSegmentError` naming the gap, the same way a corrupt
record raises instead of being skipped.

:func:`restore_from_archive` is the cold-start path: point it at an
empty (or absent) local journal path and the store, and it fetches +
replays the archived history — how a fleet worker resumes on a
*different* host than the one that crashed.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

__all__ = [
    "ArchiveError",
    "ArchiveStore",
    "DirectoryArchiveStore",
    "MissingSegmentError",
    "restore_from_archive",
]


class ArchiveError(RuntimeError):
    """A cold-store operation failed."""


class MissingSegmentError(ArchiveError, ValueError):
    """A sealed segment the journal needs is in neither tier.

    Also a ``ValueError`` because it *is* a corruption diagnosis —
    callers that already treat corrupt journals as ``ValueError``
    (see :class:`~repro.serve.persistence.StateJournal`) catch it for
    free.
    """


class ArchiveStore:
    """Duck-typed cold store: four methods over named blobs.

    Segment names are flat strings (``<journal-name>.00001.jsonl``);
    per-worker journal file names already embed the shard (e.g.
    ``fleet.journal.shard2``), so one store serves a whole fleet
    without collisions.  Implementations must make :meth:`put`
    atomic-or-absent — a reader must never fetch a half-written
    segment.
    """

    def put(self, name: str, source: Path) -> None:
        """Ship a local file into the store under ``name``."""
        raise NotImplementedError

    def fetch(self, name: str, dest: Path) -> None:
        """Materialize ``name`` at ``dest``; :class:`MissingSegmentError` if absent."""
        raise NotImplementedError

    def list(self, prefix: str = "") -> list[str]:
        """Stored names starting with ``prefix``, sorted."""
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove ``name`` from the store (missing is not an error)."""
        raise NotImplementedError


class DirectoryArchiveStore(ArchiveStore):
    """An :class:`ArchiveStore` backed by a plain directory.

    The directory may be local, NFS, or a fuse-mounted bucket — the
    journal does not care.  ``put`` copies to a temp name in the store
    directory and ``os.replace``-renames it in, so a crashed ship
    leaves no half-segment a restore could read.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def put(self, name: str, source: Path) -> None:
        target = self.root / name
        tmp = self.root / f".{name}.tmp"
        try:
            shutil.copyfile(source, tmp)
            os.replace(tmp, target)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise ArchiveError(f"could not archive {name!r} to {self.root}: {exc}") from exc

    def fetch(self, name: str, dest: Path) -> None:
        source = self.root / name
        if not source.exists():
            raise MissingSegmentError(f"segment {name!r} is not in the archive at {self.root}")
        dest.parent.mkdir(parents=True, exist_ok=True)
        tmp = dest.with_name(f".{dest.name}.fetch")
        try:
            shutil.copyfile(source, tmp)
            os.replace(tmp, dest)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise ArchiveError(f"could not fetch {name!r} from {self.root}: {exc}") from exc

    def list(self, prefix: str = "") -> list[str]:
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_file() and not entry.name.startswith(".") and entry.name.startswith(prefix)
        )

    def delete(self, name: str) -> None:
        (self.root / name).unlink(missing_ok=True)


def restore_from_archive(path: str | Path, store: ArchiveStore, **journal_kwargs):
    """Rebuild a journal (possibly on a fresh host) from the cold store.

    Fetches every archived segment for ``path``'s journal name,
    replays them in order (plus whatever active file already exists
    locally), and returns the live, appendable
    :class:`~repro.serve.persistence.StateJournal` — wired to the same
    store, so future rotations keep shipping.  Raises
    :class:`MissingSegmentError` when the archived history has a gap.
    """
    from .persistence import StateJournal

    return StateJournal(path, archive=store, **journal_kwargs)
