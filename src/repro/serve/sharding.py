"""Sharded fleet serving: partition cells across shard workers.

One :class:`~repro.serve.engine.FleetEngine` holds every cell's state
in a single process-wide dict — fine at thousands of cells, a
bottleneck (and a single blast radius) at fleet scale.
:class:`ShardedFleet` splits the fleet across ``n_shards`` workers,
each a full engine with its own state table, behind the *same* API:
``estimate``/``predict``/``rollout_fleet`` fan the batch out by cell
ownership, run each shard's slice through that shard's batched
forwards, and gather results back into request order.

Placement is **rendezvous (highest-random-weight) hashing** on the
cell id (:func:`shard_for`): every cell's owner is a pure function of
``(cell_id, n_shards)``, so no routing table needs to be stored or
replicated, and :meth:`ShardedFleet.rebalance` to a different shard
count moves only the cells whose winner changed (~``1/n`` of the
fleet when growing by one shard) — never a full reshuffle, and the
moved cells carry their :class:`~repro.serve.engine.CellState` with
them.

Because the engine's forwards are row-independent, a shard serving a
subset of a batch computes the same per-row numbers the single engine
would have — typically bit-for-bit, and always far inside the fleet's
1e-9 equivalence budget (re-partitioned batches can shift BLAS
rounding at the ~1e-17 level), which the test suite asserts against
the single-engine path.  Worker topology is declared with one
:class:`~repro.serve.workers.WorkerSpec` — ``url=None`` for in-process
:class:`FleetEngine` shards (the default), ``url="pipe://"`` for
subprocess workers, ``url="tcp://..."``/``"unix://..."`` for socket
workers on this or any other host — and every shard, whatever the
medium, speaks the same duck-typed engine API.

A shared :class:`~repro.serve.persistence.StateJournal` makes the
whole sharded fleet durable: shards append cell/window records to the
one journal (a fleet rollout is bracketed once via
``journal.rollout_scope``), and :meth:`ShardedFleet.restore` re-places
every journaled cell by hash.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from ..core.model import TwoBranchSoCNet
from ..core.rollout import RolloutResult
from ..datasets.base import CycleRecord
from ..monitor.tracing import stage
from .engine import CellState, FleetEngine
from .persistence import StateJournal
from .registry import ModelRegistry
from .workers import WorkerCrashError, WorkerSpec

if TYPE_CHECKING:
    from ..monitor.drift import DriftMonitor
    from ..monitor.metrics import MetricsRegistry

__all__ = ["ShardedFleet", "shard_for"]


def shard_for(cell_id: str, n_shards: int) -> int:
    """Rendezvous-hash owner shard of a cell.

    Each shard "bids" ``blake2b(cell_id # shard)``; the highest bid
    wins.  Changing ``n_shards`` only re-homes cells whose winning
    shard appears or disappears — the stable-rebalancing property.
    (CRC-style checksums are unusable here: they are affine, so the
    bids of equal-length cell ids differ by a constant XOR and whole
    id families collapse onto the same shard.)
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    if n_shards == 1:
        return 0
    best, best_weight = 0, -1
    for shard in range(n_shards):
        digest = hashlib.blake2b(f"{cell_id}#{shard}".encode(), digest_size=8).digest()
        weight = int.from_bytes(digest, "big")
        if weight > best_weight:
            best, best_weight = shard, weight
    return best


class ShardedFleet:
    """Fleet engine sharded by cell id, behind the single-engine API.

    Parameters
    ----------
    n_shards:
        Number of shard workers (each a :class:`FleetEngine` by
        default).
    spec:
        A :class:`~repro.serve.workers.WorkerSpec` (one template for
        every shard) or a sequence of them (per-shard; growth beyond
        the sequence reuses its last entry).  The spec carries the
        whole worker description — transport URL, model, registry,
        journal template, monitor/trace flags — so it replaces the
        ``default_model``/``journal``/``metrics``/``drift`` kwargs,
        which cannot be combined with it.
    default_model, registry:
        Passed to every in-process shard engine (shards share the
        registry's model cache, so a checkpoint is materialized once).
        With a ``spec``, ``registry`` may still be given: workers open
        their own copy of the same registry *root*, and the parent-side
        instance is what fleet-level tooling
        (:class:`~repro.serve.canary.CanaryController`, the autopilot)
        publishes and promotes through — workers follow via the shared
        ``channels.json``.
    journal:
        Optional shared :class:`StateJournal` for the whole fleet
        (in-process workers only — process/socket workers own their
        durability, e.g. one journal per worker process, declared via
        ``WorkerSpec.journal``).
    use_kernel:
        Passed to every in-process shard engine: serve through compiled
        inference kernels (default) or the Tensor path (see
        :class:`FleetEngine`).  Ignored when ``spec`` is given — specs
        carry their own ``use_kernel``.
    metrics, drift:
        Optional :class:`~repro.monitor.metrics.MetricsRegistry` /
        :class:`~repro.monitor.drift.DriftMonitor` shared by every
        in-process shard engine (one registry, one detector bank —
        cell ids are fleet-unique, so shards cannot collide).  With a
        ``spec``, declare monitoring there instead (``monitor=True``);
        worker snapshots merge in :meth:`metrics`.
    """

    def __init__(
        self,
        n_shards: int,
        default_model: TwoBranchSoCNet | None = None,
        registry: ModelRegistry | None = None,
        journal: StateJournal | None = None,
        use_kernel: bool = True,
        metrics: MetricsRegistry | None = None,
        drift: DriftMonitor | None = None,
        spec: WorkerSpec | Sequence[WorkerSpec] | None = None,
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self._specs: list[WorkerSpec] | None = None
        if spec is not None:
            if default_model is not None or journal is not None or metrics is not None or drift is not None:
                raise ValueError(
                    "spec carries the worker description; drop the "
                    "default_model/journal/metrics/drift kwargs"
                )
            self._specs = [spec] if isinstance(spec, WorkerSpec) else list(spec)
            if not self._specs:
                raise ValueError("spec sequence cannot be empty")
            self._check_spec_addresses(n_shards)
            journal = next(
                (s.journal for s in self._specs if isinstance(s.journal, StateJournal)), None
            )
        self._default_model = default_model
        self.registry = registry
        self.journal = journal
        self.use_kernel = use_kernel
        # named metrics_registry (not .metrics) because .metrics() is the
        # topology-wide snapshot method — mirroring ISSUE/API naming
        self.metrics_registry = metrics
        self.drift = drift
        self._shards = [self._new_worker(k) for k in range(n_shards)]

    @classmethod
    def restore(
        cls,
        journal: StateJournal,
        n_shards: int,
        default_model: TwoBranchSoCNet | None = None,
        registry: ModelRegistry | None = None,
        use_kernel: bool = True,
        metrics: MetricsRegistry | None = None,
        drift: DriftMonitor | None = None,
    ) -> ShardedFleet:
        """Rebuild a sharded fleet from a journal after a restart.

        Ownership is recomputed from the cell ids, so the journal needs
        no shard map — restoring at a *different* ``n_shards`` than the
        crashed process ran is valid and simply re-places the cells.
        (Resuming a rollout at the same shard count is bit-for-bit
        exact; a different count re-partitions the batches, which can
        shift trajectories by BLAS rounding ~1e-17.)
        """
        fleet = cls(
            n_shards,
            default_model=default_model,
            registry=registry,
            journal=journal,
            use_kernel=use_kernel,
            metrics=metrics,
            drift=drift,
        )
        for state in journal.snapshot().cells.values():
            shard = shard_for(state.cell_id, n_shards)
            fleet._shards[shard]._adopt_state(dataclasses.replace(state))
        return fleet

    # -- topology ------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Current number of shard workers."""
        return len(self._shards)

    def shard_of(self, cell_id: str) -> int:
        """Owner shard index of a cell id (registered or not)."""
        return shard_for(cell_id, self.n_shards)

    def shard_sizes(self) -> list[int]:
        """Registered-cell count per shard."""
        return [len(shard) for shard in self._shards]

    def rebalance(self, n_shards: int) -> int:
        """Re-shard to a new worker count; returns cells moved.

        Rendezvous placement keeps every cell whose winning shard
        survives exactly where it is; only cells on removed shards (or
        won by newly added ones) migrate, and they keep their live
        state — no SoC is lost to a topology change.
        """
        if n_shards < 1:
            raise ValueError("need at least one shard")
        old = self._shards
        self._shards = old[:n_shards] + [self._new_worker(k) for k in range(len(old), n_shards)]
        moved = 0
        for source, shard in enumerate(old):
            for state in list(shard.cells()):
                target = shard_for(state.cell_id, n_shards)
                if target != source:
                    shard._evict_state(state.cell_id)
                    self._shards[target]._adopt_state(state)
                    moved += 1
        for removed in old[n_shards:]:
            self._close_worker(removed)
        return moved

    # -- fleet membership ----------------------------------------------
    def register_cell(
        self,
        cell_id: str,
        chemistry: str | None = None,
        model_name: str | None = None,
    ) -> CellState:
        """Add (or re-route) a cell on its owner shard."""
        return self._shards[self.shard_of(cell_id)].register_cell(
            cell_id, chemistry=chemistry, model_name=model_name
        )

    def deregister_cell(self, cell_id: str) -> CellState:
        """Remove a cell from its owner shard; returns its final state."""
        return self._owner(cell_id).deregister_cell(cell_id)

    def reroute_cell(self, cell_id: str, model_name: str | None = None) -> CellState:
        """Re-resolve a cell's serving model in place (state preserved)."""
        return self._owner(cell_id).reroute_cell(cell_id, model_name=model_name)

    def cell(self, cell_id: str) -> CellState:
        """State record for one registered cell (KeyError when unknown)."""
        return self._owner(cell_id).cell(cell_id)

    def cells(self) -> Iterable[CellState]:
        """Iterate all cells' state records, shard by shard."""
        for shard in self._shards:
            yield from shard.cells()

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, cell_id: str) -> bool:
        return cell_id in self._shards[self.shard_of(cell_id)]

    # -- batched inference ---------------------------------------------
    def estimate(
        self,
        cell_ids: Sequence[str],
        voltage,
        current,
        temp_c,
        now_s: float | None = None,
    ) -> np.ndarray:
        """Batched Branch 1 across shards (see :meth:`FleetEngine.estimate`)."""
        v = np.broadcast_to(np.asarray(voltage, dtype=np.float64), (len(cell_ids),))
        i = np.broadcast_to(np.asarray(current, dtype=np.float64), (len(cell_ids),))
        t = np.broadcast_to(np.asarray(temp_c, dtype=np.float64), (len(cell_ids),))
        out = np.empty(len(cell_ids))
        for shard, idx in self._partition(cell_ids).items():
            sub_ids = [cell_ids[k] for k in idx]
            with stage("shard.estimate", shard=str(shard), rows=len(idx)):
                out[idx] = self._shards[shard].estimate(sub_ids, v[idx], i[idx], t[idx], now_s=now_s)
        return out

    def predict(
        self,
        cell_ids: Sequence[str],
        current_avg,
        temp_avg_c,
        horizon_s,
        soc_now=None,
        commit: bool = False,
        now_s: float | None = None,
    ) -> np.ndarray:
        """Batched Branch 2 across shards (see :meth:`FleetEngine.predict`)."""
        i_avg = np.broadcast_to(np.asarray(current_avg, dtype=np.float64), (len(cell_ids),))
        t_avg = np.broadcast_to(np.asarray(temp_avg_c, dtype=np.float64), (len(cell_ids),))
        horizon = np.broadcast_to(np.asarray(horizon_s, dtype=np.float64), (len(cell_ids),))
        soc = None
        if soc_now is not None:
            soc = np.broadcast_to(np.asarray(soc_now, dtype=np.float64), (len(cell_ids),))
        out = np.empty(len(cell_ids))
        for shard, idx in self._partition(cell_ids).items():
            sub_ids = [cell_ids[k] for k in idx]
            with stage("shard.predict", shard=str(shard), rows=len(idx)):
                out[idx] = self._shards[shard].predict(
                    sub_ids,
                    i_avg[idx],
                    t_avg[idx],
                    horizon[idx],
                    soc_now=None if soc is None else soc[idx],
                    commit=commit,
                    now_s=now_s,
                )
        return out

    # -- batched rollout ------------------------------------------------
    def rollout_fleet(
        self,
        assignments: Iterable[tuple[str, CycleRecord]],
        step_s: float,
        step_hook: Callable[[int], None] | None = None,
    ) -> dict[str, RolloutResult]:
        """Fan a fleet rollout out to the shards and gather the results.

        Each shard rolls its slice in lock-step batches (see
        :meth:`FleetEngine.rollout_fleet`); one journal rollout marker
        brackets the whole fleet, so restore/resume sees a single
        rollout regardless of shard count.
        """
        pairs = list(assignments)
        if self.journal is not None:
            with self.journal.rollout_scope(step_s):
                return self._fan_rollout(pairs, step_s, step_hook, resume=False)
        return self._fan_rollout(pairs, step_s, step_hook, resume=False)

    def resume_rollout_fleet(
        self,
        assignments: Iterable[tuple[str, CycleRecord]],
        step_s: float,
        step_hook: Callable[[int], None] | None = None,
    ) -> dict[str, RolloutResult]:
        """Finish an interrupted fleet rollout from the shared journal.

        Shards replay their own cells' journaled windows and compute
        only the remainder (see
        :meth:`FleetEngine.resume_rollout_fleet`); the shard count may
        differ from the run that crashed.  Durable spec-declared workers
        (e.g. journaled :class:`~repro.serve.workers.ProcessShardWorker`)
        resume from their own per-worker journals instead of a shared
        one.
        """
        if self.journal is None and not all(getattr(s, "durable", False) for s in self._shards):
            raise ValueError("resume requires a fleet with a journal attached")
        return self._fan_rollout(list(assignments), step_s, step_hook, resume=True)

    # -- worker lifecycle ----------------------------------------------
    def worker_health(self) -> list[bool]:
        """Liveness per shard worker (in-process engines are always up)."""
        return [bool(getattr(shard, "alive", True)) for shard in self._shards]

    def restart_dead_workers(self) -> list[int]:
        """Respawn every dead shard worker; returns the healed indices.

        The recovery half of gateway retry (and the
        :class:`~repro.monitor.autopilot.ControlLoop` health tick):
        journaled :class:`~repro.serve.workers.ProcessShardWorker`
        children restore their cells and in-flight rollout progress
        from their journals, so requests retried after this call land
        on a fleet that looks exactly like the one that crashed.
        In-process engines cannot die, so this is a no-op for them.
        """
        restarted: list[int] = []
        for k, shard in enumerate(self._shards):
            if getattr(shard, "alive", True):
                continue
            restart = getattr(shard, "restart", None)
            if restart is None:
                continue
            try:
                restart()
            except WorkerCrashError:
                continue  # died again during respawn/init; stays dead, callers see per-cell errors
            except RuntimeError:
                continue  # a concurrent recovery beat us to it (worker already running)
            restarted.append(k)
        return restarted

    def heartbeat(self, timeout_s: float = 2.0) -> list[bool]:
        """Actively probe every shard worker; returns liveness per shard.

        :meth:`worker_health` is the cached view (cheap, but a
        silently-dead *remote* peer stays green until a call fails);
        this one sends each probe-capable worker a deadline-bounded
        ping (:meth:`RemoteShardWorker.check_alive
        <repro.serve.workers.RemoteShardWorker.check_alive>`), marking
        unresponsive workers dead so :meth:`restart_dead_workers` can
        heal them.  Workers without a probe (in-process engines,
        pipe-backed children whose death ``waitpid`` already sees)
        report their cached liveness.  Callers serialize this against
        traffic — probes share the request channel.
        """
        health: list[bool] = []
        for shard in self._shards:
            probe = getattr(shard, "check_alive", None)
            if probe is not None:
                health.append(bool(probe(timeout_s)))
            else:
                health.append(bool(getattr(shard, "alive", True)))
        return health

    def add_worker(self, spec: WorkerSpec | str) -> int:
        """Grow the fleet by one shard worker; returns its index.

        ``spec`` may be a full :class:`~repro.serve.workers.WorkerSpec`
        or just a transport URL string — the daemon's worker
        registration path — in which case the fleet's spec template is
        reused with the new address (same model, journal template,
        monitor flags).  Rendezvous hashing then migrates ~1/n of the
        cells onto the new shard, live state intact.
        """
        if isinstance(spec, str):
            template = self._spec_for(len(self._shards))
            spec = dataclasses.replace(template, url=spec, spawn=False)
        worker = spec.resolve(len(self._shards))
        if self._specs is not None:
            self._specs.append(spec)
        return self.adopt_worker(worker)

    def adopt_worker(self, worker) -> int:
        """Attach an already-built worker as a new shard; returns its index.

        The inbound-registration half of the serve daemon: a worker
        that dialed in (``repro-soc worker --connect``) arrives as a
        live :class:`~repro.serve.workers.RemoteShardWorker`, not a
        spec to resolve.  Cells the new shard now wins migrate in with
        their state (the same move :meth:`rebalance` performs).
        """
        self._shards.append(worker)
        n = len(self._shards)
        for source, shard in enumerate(self._shards[:-1]):
            for state in list(shard.cells()):
                target = shard_for(state.cell_id, n)
                if target != source:
                    shard._evict_state(state.cell_id)
                    self._shards[target]._adopt_state(state)
        return n - 1

    def reattach_worker(self, name: str, transport) -> int | None:
        """Re-home a returning ``--connect`` worker onto its old shard.

        Matches a *dead* shard worker by ``name`` and hands it the
        fresh transport (:meth:`RemoteShardWorker.attach
        <repro.serve.workers.RemoteShardWorker.attach>`): the worker
        re-inits, restores from its journal, and the shard heals in
        place — no rebalance, no lost cells.  Returns the shard index,
        or ``None`` when no dead worker carries that name (the caller
        should :meth:`adopt_worker` it as new capacity instead).
        """
        for k, shard in enumerate(self._shards):
            if getattr(shard, "name", None) != name:
                continue
            if getattr(shard, "alive", True):
                continue
            attach = getattr(shard, "attach", None)
            if attach is None:
                continue
            attach(transport)
            return k
        return None

    # -- observability --------------------------------------------------
    def metrics(self) -> dict:
        """One merged metrics snapshot across the whole shard topology.

        In-process shards sharing one registry contribute it once
        (deduplicated by object identity); subprocess workers built
        with ``monitor=True`` ship their snapshots over the wire
        (``metrics`` op).  Dead workers are skipped — their series
        resume after :meth:`restart_dead_workers`.  Merge rules are
        those of :func:`repro.monitor.metrics.merge_snapshots`.
        """
        from ..monitor.metrics import merge_snapshots

        snapshots: list[dict] = []
        seen: set[int] = set()
        for shard in self._shards:
            snapshot_fn = getattr(shard, "metrics_snapshot", None)
            if snapshot_fn is None:
                continue
            registry = getattr(shard, "metrics", None)
            if registry is not None:
                if id(registry) in seen:
                    continue
                seen.add(id(registry))
            try:
                snapshot = snapshot_fn()
            except WorkerCrashError:
                continue
            if snapshot:
                snapshots.append(snapshot)
        return merge_snapshots(snapshots)

    def drift_events(self) -> list:
        """Drift events gathered across the whole shard topology.

        Fans :meth:`FleetEngine.drift_events` out to every shard:
        in-process shards sharing one monitor (or router) contribute it
        once (deduplicated by object identity), subprocess workers ship
        their events over the wire (``drift_events`` op).  Dead workers
        are skipped.  Order is per-shard oldest-first; cell ids are
        fleet-unique, so events never collide across shards.
        """
        events: list = []
        seen: set[int] = set()
        for shard in self._shards:
            fetch = getattr(shard, "drift_events", None)
            if fetch is None:
                continue
            monitor = getattr(shard, "drift", None)
            if monitor is not None:
                if id(monitor) in seen:
                    continue
                seen.add(id(monitor))
            try:
                events.extend(fetch())
            except WorkerCrashError:
                continue
        return events

    def close(self) -> None:
        """Shut down shard workers that hold external resources.

        Process-backed workers drain gracefully (journals flushed,
        children reaped); in-process engines have nothing to release.
        """
        for shard in self._shards:
            self._close_worker(shard)

    def __enter__(self) -> ShardedFleet:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _new_worker(self, index: int):
        return self._spec_for(index).resolve(index)

    def _spec_for(self, index: int) -> WorkerSpec:
        """The :class:`WorkerSpec` governing shard ``index``.

        Legacy kwargs are folded into an in-process spec, so there is
        exactly one construction path whatever the API vintage.
        """
        if self._specs is not None:
            return self._specs[min(index, len(self._specs) - 1)]
        return WorkerSpec(
            url=None,
            model=self._default_model,
            registry=self.registry,
            journal=self.journal,
            use_kernel=self.use_kernel,
            metrics=self.metrics_registry,
            drift=self.drift,
        )

    def _check_spec_addresses(self, n_shards: int) -> None:
        """Reject socket topologies where shards would share one endpoint.

        A standalone worker serves one connection at a time, so two
        shards dialing the same fixed URL would deadlock the second;
        catching it at construction beats a hung ``connect``.  Spawned
        workers (fresh process per shard) and ``{shard}``-templated
        URLs are fine, as is a spec list with distinct addresses.
        """
        fixed: set[str] = set()
        for index in range(n_shards):
            s = self._specs[min(index, len(self._specs) - 1)]
            if s.url is None or s.spawn or "{shard}" in s.url or s.scheme in ("pipe", "shm"):
                continue
            if s.url in fixed:
                raise ValueError(
                    f"{n_shards} shards would share one worker endpoint {s.url!r}; "
                    "use a {shard} URL template, spawn=True, or distinct per-shard specs"
                )
            fixed.add(s.url)

    @staticmethod
    def _close_worker(worker) -> None:
        closer = getattr(worker, "close", None)
        if closer is not None:
            closer()

    def _fan_rollout(
        self,
        pairs: list[tuple[str, CycleRecord]],
        step_s: float,
        step_hook: Callable[[int], None] | None,
        resume: bool,
    ) -> dict[str, RolloutResult]:
        by_shard: dict[int, list[tuple[str, CycleRecord]]] = {}
        for cell_id, cycle in pairs:
            by_shard.setdefault(self.shard_of(cell_id), []).append((cell_id, cycle))
        results: dict[str, RolloutResult] = {}
        for shard, shard_pairs in sorted(by_shard.items()):
            engine = self._shards[shard]
            with stage("shard.rollout", shard=str(shard), cells=len(shard_pairs)):
                if resume:
                    results.update(
                        engine.resume_rollout_fleet(shard_pairs, step_s, step_hook=step_hook)
                    )
                else:
                    results.update(engine.rollout_fleet(shard_pairs, step_s, step_hook=step_hook))
        return {cell_id: results[cell_id] for cell_id, _ in pairs}

    def _owner(self, cell_id: str) -> FleetEngine:
        shard = self._shards[self.shard_of(cell_id)]
        if cell_id not in shard:
            raise KeyError(f"unknown cell {cell_id!r}; {len(self)} cells registered")
        return shard

    def _partition(self, cell_ids: Sequence[str]) -> dict[int, np.ndarray]:
        groups: dict[int, list[int]] = {}
        for k, cid in enumerate(cell_ids):
            groups.setdefault(self.shard_of(cid), []).append(k)
        return {shard: np.asarray(idx) for shard, idx in groups.items()}
