"""Synthetic fleet scenarios: many cells, mixed chemistries and workloads.

The serving engine's unit of work is a heterogeneous *fleet*: cells of
different chemistries, ambient temperatures and usage patterns all
asking for SoC service at once.  This module fabricates such fleets
from the repo's own physics stack — each distinct
``(cell, temperature, C-rate, protocol)`` condition is simulated once
through :mod:`repro.battery.protocols` and shared by every fleet member
assigned to it (real fleets likewise cluster onto a few duty cycles,
and the sharing keeps thousand-cell scenarios cheap to fabricate).

Used by ``benchmarks/bench_fleet_throughput.py`` and the
``repro-soc serve-sim`` CLI subcommand.
"""

from __future__ import annotations

import dataclasses
import zlib

import numpy as np

from ..battery.cell import get_cell_spec
from ..battery.protocols import CycleSpec, run_cc_cycle, run_full_discharge
from ..battery.simulator import CellSimulator, SensorNoise
from ..datasets.base import CycleRecord

__all__ = ["FleetMember", "FleetScenario", "generate_fleet"]

PROTOCOLS = ("discharge", "cc-cycle")


@dataclasses.dataclass(frozen=True)
class FleetMember:
    """One cell of a synthetic fleet and its assigned duty cycle."""

    cell_id: str
    cell_name: str
    chemistry: str
    ambient_c: float
    protocol: str
    c_rate: float
    cycle: CycleRecord


@dataclasses.dataclass(frozen=True)
class FleetScenario:
    """A generated fleet: members plus the seed that reproduces it."""

    members: tuple[FleetMember, ...]
    seed: int

    def __len__(self) -> int:
        return len(self.members)

    def assignments(self) -> list[tuple[str, CycleRecord]]:
        """``(cell_id, cycle)`` pairs in fleet order — the
        :meth:`~repro.serve.engine.FleetEngine.rollout_fleet` input."""
        return [(m.cell_id, m.cycle) for m in self.members]

    def chemistries(self) -> dict[str, int]:
        """Fleet composition: chemistry -> member count."""
        counts: dict[str, int] = {}
        for m in self.members:
            counts[m.chemistry] = counts.get(m.chemistry, 0) + 1
        return counts

    def n_conditions(self) -> int:
        """Distinct simulated duty cycles backing the fleet."""
        return len({id(m.cycle) for m in self.members})


def generate_fleet(
    n_cells: int,
    seed: int = 0,
    cell_names: tuple[str, ...] = ("sandia-nca", "sandia-nmc", "sandia-lfp", "lg-hg2"),
    ambient_temps_c: tuple[float, ...] = (10.0, 25.0, 40.0),
    c_rates: tuple[float, ...] = (0.5, 1.0, 2.0),
    protocols: tuple[str, ...] = PROTOCOLS,
    dt_s: float = 2.0,
    record_every: int = 4,
    max_time_s: float = 2.0 * 3600.0,
) -> FleetScenario:
    """Fabricate a fleet of ``n_cells`` with randomized conditions.

    Parameters
    ----------
    n_cells:
        Fleet size.
    seed:
        Drives both the per-cell condition draw and the sensor noise of
        each simulated trace — the same seed reproduces the same fleet.
    cell_names:
        Candidate cell specs (see :data:`repro.battery.CELL_SPECS`).
    ambient_temps_c, c_rates, protocols:
        Candidate conditions; ``"discharge"`` is a full discharge to
        cutoff, ``"cc-cycle"`` a lab charge/rest/discharge/rest cycle.
    dt_s, record_every:
        Simulation step and recording decimation (the recorded
        sampling period is their product).
    max_time_s:
        Safety bound per simulated protocol phase.

    Raises
    ------
    ValueError
        On an empty fleet or an unknown protocol name.
    """
    if n_cells < 1:
        raise ValueError("fleet needs at least one cell")
    for protocol in protocols:
        if protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {protocol!r}; known: {PROTOCOLS}")
    rng = np.random.default_rng(seed)
    traces: dict[tuple, CycleRecord] = {}
    members: list[FleetMember] = []
    for k in range(n_cells):
        cell_name = str(rng.choice(cell_names))
        ambient = float(rng.choice(ambient_temps_c))
        c_rate = float(rng.choice(c_rates))
        protocol = str(rng.choice(protocols))
        condition = (cell_name, ambient, c_rate, protocol)
        if condition not in traces:
            traces[condition] = _simulate_condition(
                condition, seed, dt_s, record_every, max_time_s
            )
        cycle = traces[condition]
        members.append(
            FleetMember(
                cell_id=f"cell-{k:05d}",
                cell_name=cell_name,
                chemistry=cycle.tags["chemistry"],
                ambient_c=ambient,
                protocol=protocol,
                c_rate=c_rate,
                cycle=cycle,
            )
        )
    return FleetScenario(members=tuple(members), seed=seed)


def _simulate_condition(
    condition: tuple, seed: int, dt_s: float, record_every: int, max_time_s: float
) -> CycleRecord:
    cell_name, ambient, c_rate, protocol = condition
    spec = get_cell_spec(cell_name)
    c_rate = min(c_rate, spec.max_discharge_c)
    # hash the condition into the noise stream so traces are distinct
    # but reproducible for a given scenario seed (crc32: Python's own
    # hash() is salted per process)
    noise_seed = zlib.crc32(f"{seed}:{condition}".encode())
    sim = CellSimulator(spec, noise=SensorNoise(), rng=np.random.default_rng(noise_seed))
    if protocol == "discharge":
        sim.reset(soc=1.0, temp_c=ambient)
        trace = run_full_discharge(
            sim, c_rate, ambient, dt_s=dt_s, record_every=record_every, max_time_s=max_time_s
        )
    else:  # cc-cycle
        sim.reset(soc=0.3, temp_c=ambient)
        trace = run_cc_cycle(
            sim,
            CycleSpec(
                discharge_c_rate=c_rate,
                ambient_c=ambient,
                rest_s=300.0,
                dt_s=dt_s,
                record_every=record_every,
            ),
            max_phase_time_s=max_time_s,
        )
    return CycleRecord(
        name=f"{cell_name}-{protocol}-{c_rate:g}C-{ambient:g}C",
        split="test",
        ambient_c=ambient,
        sampling_period_s=dt_s * record_every,
        capacity_ah=spec.capacity_ah,
        data=trace,
        tags={"chemistry": spec.chemistry.name, "protocol": protocol, "c_rate": c_rate},
    )
