"""Micro-batching request scheduler for the fleet engine.

Requests from different cells arrive at different times; running each
one alone squanders the engine's batched forward path.  The
:class:`MicroBatcher` coalesces ``estimate`` and ``predict`` requests
into per-kind queues and releases a queue as one engine call when it
either fills up (**size trigger**, ``max_batch``) or its oldest request
has waited long enough (**deadline trigger**, ``max_delay_s``) — the
classic latency/throughput knob of serving systems.

Time is injected (``clock``) so schedules are exactly reproducible in
tests and simulations; production callers pass ``time.monotonic``.
Every completion carries its queueing latency and the size of the
batch that served it, and :attr:`MicroBatcher.stats` aggregates both.

The batcher is thread-safe: submissions, polls and flushes serialize
on one re-entrant lock (:attr:`MicroBatcher.lock`), so concurrent
submitters — gateway executor threads, a polling serving loop — never
tear a queue or double-serve a request.  Holding the lock across the
engine call also means an engine shared with out-of-band work (e.g. a
fleet rollout on a gateway executor thread) can be serialized against
batch flushes by taking the same lock.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Callable

from .engine import FleetEngine

__all__ = ["Request", "Completion", "BatchStats", "MicroBatcher"]

_KINDS = ("estimate", "predict")


@dataclasses.dataclass(frozen=True, slots=True)
class Request:
    """One queued inference request.

    ``payload`` holds the kind-specific operands: ``(V, I, T)`` for an
    estimate, ``(I_avg, T_avg, N)`` for a prediction.

    ``trace`` optionally carries the submitter's
    :class:`~repro.monitor.tracing.TraceContext` so the batcher can
    attribute queue-wait and batch-serve time to the originating
    request's trace (``None`` — the common case — costs nothing).

    Slotted: at gateway rates (~10k req/s) one of these is allocated
    per request, and ``__slots__`` drops the per-instance ``__dict__``.
    """

    req_id: int
    kind: str
    cell_id: str
    payload: tuple[float, ...]
    submitted_s: float
    trace: object | None = None


@dataclasses.dataclass(frozen=True, slots=True)
class Completion:
    """Outcome of one request after its batch was served.

    Attributes
    ----------
    req_id, cell_id, kind:
        Echo of the originating request.
    value:
        The SoC the engine returned (NaN when the request failed).
    wait_s:
        Time the request sat in the queue before its batch fired.
    batch_size:
        Number of requests served by the same engine call.
    error:
        Failure message when the engine rejected this request
        (``None`` on success).  A bad request never blocks its
        batchmates: requests for unregistered cells are rejected
        before the engine call, and an engine-level failure makes the
        scheduler retry the rest individually.
    """

    req_id: int
    cell_id: str
    kind: str
    value: float
    wait_s: float
    batch_size: int
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the engine served this request successfully."""
        return self.error is None


@dataclasses.dataclass(slots=True)
class BatchStats:
    """Aggregate latency/throughput accounting across all flushes."""

    requests: int = 0
    errors: int = 0
    flushes: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    forced_flushes: int = 0
    total_wait_s: float = 0.0
    max_wait_s: float = 0.0

    def mean_wait_s(self) -> float:
        """Mean queueing latency per request."""
        return self.total_wait_s / self.requests if self.requests else 0.0

    def mean_batch_size(self) -> float:
        """Mean number of requests coalesced per engine call."""
        return self.requests / self.flushes if self.flushes else 0.0


class MicroBatcher:
    """Coalesce single-cell requests into batched engine calls.

    Parameters
    ----------
    engine:
        The :class:`~repro.serve.engine.FleetEngine` (or
        :class:`~repro.serve.sharding.ShardedFleet`) serving the fleet.
    max_batch:
        Queue size that releases a batch immediately.
    max_delay_s:
        Longest any request may wait; :meth:`poll` releases queues
        whose oldest entry has exceeded it.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        engine: FleetEngine,
        max_batch: int = 64,
        max_delay_s: float = 0.010,
        clock: Callable[[], float] = time.monotonic,
        on_worker_crash: Callable[[], bool] | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s cannot be negative")
        self.engine = engine
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.clock = clock
        # recovery hook: invoked (under the batcher lock) when a batched
        # engine call dies with WorkerCrashError; return True after
        # restarting/rebalancing workers and the batch is retried once
        # against the healed fleet instead of erroring out per request
        self.on_worker_crash = on_worker_crash
        self.stats = BatchStats()
        # guards queues, outbox and stats against concurrent submitters;
        # re-entrant because a size-triggered submit flushes inline
        self.lock = threading.RLock()
        self._queues: dict[str, list[Request]] = {kind: [] for kind in _KINDS}
        self._outbox: list[Completion] = []
        self._next_id = 0

    # -- submission ----------------------------------------------------
    def submit_estimate(self, cell_id: str, voltage: float, current: float, temp_c: float, trace=None) -> int:
        """Queue a Branch 1 request; returns its request id.

        Fires the ``estimate`` queue immediately if this submission
        fills it.  ``trace`` optionally attaches the submitter's trace
        context (see :class:`Request`).
        """
        return self._submit("estimate", cell_id, (voltage, current, temp_c), trace)

    def submit_predict(
        self, cell_id: str, current_avg: float, temp_avg_c: float, horizon_s: float, trace=None
    ) -> int:
        """Queue a Branch 2 what-if request; returns its request id.

        The cell needs a stored SoC by the time the batch fires (i.e.
        an earlier estimate completed); otherwise its completion comes
        back with :attr:`Completion.error` set.
        """
        return self._submit("predict", cell_id, (current_avg, temp_avg_c, horizon_s), trace)

    def _submit(self, kind: str, cell_id: str, payload: tuple[float, ...], trace=None) -> int:
        with self.lock:
            req = Request(self._next_id, kind, cell_id, payload, self.clock(), trace)
            self._next_id += 1
            self._queues[kind].append(req)
            if len(self._queues[kind]) >= self.max_batch:
                self._flush_kind(kind, "size")
            return req.req_id

    # -- release -------------------------------------------------------
    def poll(self) -> list[Completion]:
        """Release queues whose oldest request hit the deadline.

        Call this from the serving loop; returns all completions
        produced so far (including earlier size-triggered ones).
        """
        with self.lock:
            now = self.clock()
            for kind in _KINDS:
                queue = self._queues[kind]
                if queue and now - queue[0].submitted_s >= self.max_delay_s:
                    self._flush_kind(kind, "deadline")
            return self.drain()

    def flush(self) -> list[Completion]:
        """Force every queue out now and return all completions."""
        with self.lock:
            for kind in _KINDS:
                if self._queues[kind]:
                    self._flush_kind(kind, "forced")
            return self.drain()

    def drain(self) -> list[Completion]:
        """Return completions accumulated since the last drain."""
        with self.lock:
            out, self._outbox = self._outbox, []
            return out

    @property
    def pending(self) -> int:
        """Requests currently queued across both kinds."""
        with self.lock:
            return sum(len(q) for q in self._queues.values())

    # ------------------------------------------------------------------
    def _flush_kind(self, kind: str, trigger: str) -> None:
        queue = self._queues[kind]
        if not queue:
            return
        batch, self._queues[kind] = queue, []
        now = self.clock()
        # trace attribution: every traced request gets a queue-wait span;
        # the engine call itself runs under ONE representative context
        # (the first traced request), so engine/shard/wire/kernel child
        # spans nest in that trace — the others record a flat batch.serve
        # span with the same timing, which is the honest picture: one
        # engine call served them all.
        rep = next((r.trace for r in batch if r.trace is not None), None)
        if rep is None:
            outcomes = self._serve_batch(kind, batch, now)
        else:
            with rep.tracer.span(rep, "batch.serve", batch_size=len(batch), trigger=trigger):
                outcomes = self._serve_batch(kind, batch, now)
            t_done = self.clock()
            for r in batch:
                if r.trace is None:
                    continue
                r.trace.tracer.record(r.trace, "batch.queue_wait", r.submitted_s, now)
                if r.trace is not rep:
                    r.trace.tracer.record(
                        r.trace, "batch.serve", now, t_done, batch_size=len(batch), trigger=trigger
                    )
        for r, value, error in outcomes:
            wait = now - r.submitted_s
            self._outbox.append(Completion(r.req_id, r.cell_id, kind, value, wait, len(batch), error))
            self.stats.requests += 1
            self.stats.errors += error is not None
            self.stats.total_wait_s += wait
            self.stats.max_wait_s = max(self.stats.max_wait_s, wait)
        self.stats.flushes += 1
        setattr(self.stats, f"{trigger}_flushes", getattr(self.stats, f"{trigger}_flushes") + 1)

    def _attempt_batch(self, kind: str, batch: list[Request], now: float):
        """Pre-flight the batch and serve the registered slice in one call.

        Requests for unregistered cells get their own error completions
        up front, so one bad cell id neither sinks its batchmates nor
        degrades them to per-request engine calls.  The membership
        probes themselves touch the engine (an RPC per shard on a
        process-backed fleet), which is why this whole attempt — not
        just the batched run — sits under the caller's crash-recovery
        umbrella.
        """
        rejected = [r for r in batch if r.cell_id not in self.engine]
        served = [r for r in batch if r.cell_id in self.engine]
        outcomes = [
            (r, float("nan"), f"unknown cell {r.cell_id!r}: not registered with the engine")
            for r in rejected
        ]
        if served:
            outcomes += [(r, float(v), None) for r, v in zip(served, self._run(kind, served, now))]
        return outcomes

    def _serve_batch(self, kind: str, batch: list[Request], now: float):
        """Serve one flushed batch, surviving crashes and poison requests.

        A :class:`~repro.serve.workers.WorkerCrashError` anywhere in the
        attempt (a shard worker subprocess died) triggers the
        ``on_worker_crash`` hook; if it reports a successful
        restart/rebalance the batch is retried **once** against the
        healed fleet.  Any other failure — or a retry that fails again —
        falls back to per-request isolation, where every request is
        individually wrapped so this method can never raise: a flush
        that threw would kill the gateway's flusher task and strand
        every queued waiter.  (Cells on surviving shards are served
        twice by a batch retry; estimates/predictions are idempotent
        reads, so only their request counters notice.)
        """
        from .workers import WorkerCrashError  # late: workers imports this module's engine types

        try:
            return self._attempt_batch(kind, batch, now)
        except WorkerCrashError:
            # the hook itself touches the fleet (respawn + init), so a
            # persistently-crashing worker can raise right here — treat
            # that as "not recovered", never let it escape the flush
            try:
                recovered = self.on_worker_crash is not None and self.on_worker_crash()
            except Exception:
                recovered = False
            if recovered:
                try:
                    return self._attempt_batch(kind, batch, now)
                except Exception:
                    pass
        except Exception:
            pass
        # one poisoned request must not sink the batch: retry each
        # request alone and report failures on their own completions
        outcomes = []
        for r in batch:
            try:
                if r.cell_id not in self.engine:
                    outcomes.append(
                        (r, float("nan"), f"unknown cell {r.cell_id!r}: not registered with the engine")
                    )
                else:
                    outcomes.append((r, float(self._run(kind, [r], now)[0]), None))
            except Exception as exc:
                outcomes.append((r, float("nan"), f"{type(exc).__name__}: {exc}"))
        return outcomes

    def _run(self, kind: str, batch: list[Request], now: float):
        cell_ids = [r.cell_id for r in batch]
        cols = list(zip(*(r.payload for r in batch)))
        if kind == "estimate":
            return self.engine.estimate(cell_ids, cols[0], cols[1], cols[2], now_s=now)
        return self.engine.predict(cell_ids, cols[0], cols[1], cols[2], now_s=now)
