"""Fleet-scale inference engine: batched SoC estimation and rollout.

The paper's deployment story is a 2,322-parameter network cheap enough
to run per cell on a BMS; a *fleet* backend inverts the problem — one
process serving thousands of cells.  Calling the model once per cell
wastes almost all wall-clock on Python overhead, because a forward pass
through the two branches is a handful of tiny matmuls.

:class:`FleetEngine` keeps per-cell state (last SoC, chemistry, request
counters), resolves one model per cell (a shared default, or per-
chemistry checkpoints from a :class:`~repro.serve.registry.ModelRegistry`),
and batches every operation across all cells that share a model:

- :meth:`estimate` — one Branch 1 forward for N cells' sensor rows;
- :meth:`predict` — one Branch 2 forward for N what-if queries;
- :meth:`rollout_fleet` — autoregressive rollout advancing N cells per
  step in one matrix op, numerically identical to looping
  :func:`repro.core.rollout.model_rollout` cell by cell (both paths
  consume :func:`repro.core.rollout.cycle_windows` workloads).
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from ..core.kernels import CompiledTwoBranchKernel, FusedTwoBranchKernel
from ..core.model import TwoBranchSoCNet
from ..core.rollout import RolloutResult, cycle_windows
from ..datasets.base import CycleRecord
from ..monitor.tracing import current_context
from ..monitor.tracing import stage as trace_stage
from .registry import ModelRegistry

if TYPE_CHECKING:
    from ..monitor.drift import DriftMonitor
    from ..monitor.metrics import MetricsRegistry
    from .persistence import StateJournal

__all__ = ["CellState", "FleetEngine"]

_DEFAULT_MODEL_KEY = "__default__"

# Cross-model fusion crossover, calibrated on bench_kernel_latency.py:
# the fused batched-GEMM path wins when per-group Python dispatch
# dominates (many groups, few rows each) and loses once the per-group
# GEMMs are large enough to amortise dispatch on their own.
_FUSE_MIN_GROUPS = 4
_FUSE_MAX_ROWS_PER_GROUP = 64


@dataclasses.dataclass
class CellState:
    """Mutable serving-side record for one fleet cell.

    Attributes
    ----------
    cell_id:
        Fleet-unique identifier.
    chemistry:
        Chemistry tag used for model resolution (may be ``None``).
    model_key:
        Resolved registry name (or the shared-default sentinel).
    soc:
        Last served SoC estimate (``None`` until the first estimate).
    last_seen_s:
        Clock reading of the most recent request (``None`` untracked).
    n_requests:
        Requests served for this cell since registration.
    """

    cell_id: str
    chemistry: str | None
    model_key: str
    soc: float | None = None
    last_seen_s: float | None = None
    n_requests: int = 0


class FleetEngine:
    """Batched multi-cell server over one or more two-branch models.

    Parameters
    ----------
    default_model:
        Model used for cells the registry cannot place (and for the
        whole fleet when no registry is given).
    registry:
        Optional :class:`ModelRegistry`; cells are routed to
        ``registry.resolve(chemistry=...)`` at registration time.
    journal:
        Optional :class:`~repro.serve.persistence.StateJournal`; every
        per-cell state mutation (registration, estimates, predictions,
        rollout windows) is appended to it, making the fleet restorable
        via :meth:`restore` / :meth:`resume_rollout_fleet`.
    use_kernel:
        Serve inference through per-model
        :class:`~repro.core.kernels.CompiledTwoBranchKernel` compiled
        chains (default).  The escape hatch ``use_kernel=False`` routes
        every forward through the original autograd ``Tensor`` path
        instead — the kernels carry a golden-equivalence guarantee
        (1e-9 across batch sizes, branches and the cascade; see
        ``tests/test_core_kernels.py``), so this is for debugging and
        A/B timing, not correctness.  Kernels snapshot a model's
        weights at first use and are recompiled automatically when a
        model *object* is replaced (e.g. a registry promote); mutating
        weights in place on a live engine requires a new engine or
        ``use_kernel=False``.
    dtype:
        Serving precision tier for the compiled kernels: ``float64``
        (default; ~1e-13 of the Tensor path) or ``float32`` (the
        deployment-sized fast tier, ~1e-6 single-forward accuracy —
        quantified per op by ``bench_kernel_latency.py`` and pinned in
        ``tests/test_core_kernels.py``).  Estimate/predict results are
        returned (and journaled/wired) in this dtype; fleet rollouts
        keep float64 trajectory state regardless, so recursion, journal
        records and resume stay on one representation.  Requires
        ``use_kernel=True`` — the Tensor path is float64-only.
    fuse_models:
        Serve mixed-model estimate/predict batches through one batched
        :class:`~repro.core.kernels.FusedTwoBranchKernel` GEMM chain
        instead of one dispatch per model group (default).  Fusion is
        adaptive: it only engages on dispatch-bound batches (at least
        four model groups, at most ~64 rows per group on average);
        GEMM-bound batches keep the per-model loop.  The fused kernel
        is cached per model-key set and rebuilt when any member kernel
        is recompiled; incompatible architectures fall back to the
        per-model loop automatically.
    metrics:
        Optional :class:`~repro.monitor.metrics.MetricsRegistry`; when
        attached the engine reports per-model request counters
        (``engine_requests_total{op=,model=,path=}``), rollout window
        counts, per-window physics-residual summaries
        (``engine_physics_residual{model=}``) and a fleet-size gauge.
        ``None`` (the default) keeps the hot path entirely
        instrumentation-free.
    drift:
        Optional :class:`~repro.monitor.drift.DriftMonitor`; estimates
        and predictions get physics-bounds checks, and fleet rollouts
        stream the per-cell ``|coulomb ΔSoC − predicted ΔSoC|``
        residual (the Branch 2 correction magnitude over Eq. 1) into
        its Page–Hinkley/CUSUM banks.  A *callable* is treated as a
        per-chemistry config resolver — ``resolver(chemistry) -> spec
        dict | DriftMonitor | None`` — and wrapped in a
        :class:`~repro.monitor.drift.ChemistryDriftRouter`, so mixed
        fleets get chemistry-specific detector tuning (e.g. from
        registry metadata, see
        :func:`repro.serve.driftconfig.drift_resolver_from_registry`)
        while the plain single-monitor path keeps working unchanged.

    At least one of ``default_model`` / ``registry`` must be provided.
    """

    def __init__(
        self,
        default_model: TwoBranchSoCNet | None = None,
        registry: ModelRegistry | None = None,
        journal: StateJournal | None = None,
        use_kernel: bool = True,
        metrics: MetricsRegistry | None = None,
        drift: DriftMonitor | None = None,
        dtype=np.float64,
        fuse_models: bool = True,
    ):
        if default_model is None and registry is None:
            raise ValueError("need a default model, a registry, or both")
        self.registry = registry
        self.journal = journal
        self.use_kernel = use_kernel
        self.dtype = np.dtype(dtype)
        if self.dtype.kind != "f":
            raise ValueError(f"serving dtype must be a float dtype, got {self.dtype}")
        if self.dtype != np.dtype(np.float64) and not use_kernel:
            raise ValueError("dtype tiers require use_kernel=True (the Tensor path is float64-only)")
        self.fuse_models = bool(fuse_models)
        self.metrics = metrics
        if metrics is not None:
            from ..monitor.resources import install_process_metrics

            install_process_metrics(metrics)
        if drift is not None and not hasattr(drift, "observe_soc") and callable(drift):
            from ..monitor.drift import ChemistryDriftRouter

            drift = ChemistryDriftRouter(drift, metrics=metrics)
        self.drift = drift
        self._models: dict[str, TwoBranchSoCNet] = {}
        self._kernels: dict[str, CompiledTwoBranchKernel] = {}
        # fused cross-model kernels per sorted model-key set; each entry
        # remembers the member kernels it was built from so a recompile
        # of any member (registry promote) invalidates it, and caches
        # None for architecture-incompatible sets so the per-model
        # fallback isn't re-attempted every batch
        self._fused: dict[tuple[str, ...], tuple[tuple, FusedTwoBranchKernel | None]] = {}
        # instrument objects cached per (op, model key): the registry's
        # get-or-create builds a label-string key per call, which is too
        # much work for the per-batch hot path
        self._op_counters: dict[tuple[str, str], object] = {}
        self._residual_hists: dict[str, object] = {}
        if default_model is not None:
            self._models[_DEFAULT_MODEL_KEY] = default_model
        self._cells: dict[str, CellState] = {}

    # -- durability ----------------------------------------------------
    @classmethod
    def restore(
        cls,
        journal: StateJournal,
        default_model: TwoBranchSoCNet | None = None,
        registry: ModelRegistry | None = None,
        use_kernel: bool = True,
        metrics: MetricsRegistry | None = None,
        drift: DriftMonitor | None = None,
        dtype=np.float64,
        fuse_models: bool = True,
    ) -> FleetEngine:
        """Rebuild an engine from a journal after a restart.

        Every cell the journal knows about comes back with its last
        served SoC, model routing and request counters; the journal
        stays attached, so serving continues appending to it.  An
        interrupted fleet rollout can then be completed with
        :meth:`resume_rollout_fleet`.
        """
        engine = cls(
            default_model=default_model,
            registry=registry,
            journal=journal,
            use_kernel=use_kernel,
            metrics=metrics,
            drift=drift,
            dtype=dtype,
            fuse_models=fuse_models,
        )
        for state in journal.snapshot().cells.values():
            engine._adopt_state(dataclasses.replace(state))
        return engine

    # -- fleet membership ----------------------------------------------
    def register_cell(
        self,
        cell_id: str,
        chemistry: str | None = None,
        model_name: str | None = None,
    ) -> CellState:
        """Add (or re-route) a cell and resolve its serving model.

        Parameters
        ----------
        cell_id:
            Fleet-unique identifier.
        chemistry:
            Chemistry tag; with a registry attached it selects the
            per-chemistry checkpoint.
        model_name:
            Pin the cell to a specific registry model, bypassing
            resolution.
        """
        key = self._resolve_key(chemistry, model_name)
        new = cell_id not in self._cells
        state = CellState(cell_id=cell_id, chemistry=chemistry, model_key=key)
        self._cells[cell_id] = state
        resolve = getattr(self.drift, "resolve_cell", None)
        if resolve is not None:
            resolve(cell_id, chemistry)
        self._record(state)
        if new:
            self._track_size(1)
        return state

    def deregister_cell(self, cell_id: str) -> CellState:
        """Remove a cell from the fleet and return its final state."""
        state = self.cell(cell_id)
        del self._cells[cell_id]
        if self.journal is not None:
            self.journal.drop_cell(cell_id)
        self._track_size(-1)
        return state

    def reroute_cell(self, cell_id: str, model_name: str | None = None) -> CellState:
        """Re-resolve a registered cell's serving model, keeping its state.

        Unlike :meth:`register_cell` this preserves the stored SoC and
        counters — it is how canary rollouts pin a slice of the fleet
        to a candidate checkpoint (``model_name="name@v3"``) and later
        return it to channel routing (``model_name="name"``).
        """
        state = self.cell(cell_id)
        state.model_key = self._resolve_key(state.chemistry, model_name)
        self._record(state)
        return state

    def cell(self, cell_id: str) -> CellState:
        """State record for one registered cell.

        Raises
        ------
        KeyError
            When the cell is unknown.
        """
        if cell_id not in self._cells:
            raise KeyError(f"unknown cell {cell_id!r}; {len(self._cells)} cells registered")
        return self._cells[cell_id]

    def cells(self) -> Iterable[CellState]:
        """Iterate over all registered cells' state records."""
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, cell_id: str) -> bool:
        return cell_id in self._cells

    # -- batched inference ---------------------------------------------
    def estimate(
        self,
        cell_ids: Sequence[str],
        voltage,
        current,
        temp_c,
        now_s: float | None = None,
    ) -> np.ndarray:
        """Batched Branch 1: estimate SoC(t) for many cells at once.

        One forward pass per distinct serving model covers the whole
        batch; each cell's stored SoC is updated with its estimate.

        Parameters
        ----------
        cell_ids:
            Registered cells, one per sensor row.
        voltage, current, temp_c:
            Sensor readings aligned with ``cell_ids``.
        now_s:
            Optional clock reading recorded as ``last_seen_s``.
        """
        v = np.broadcast_to(np.asarray(voltage, dtype=np.float64), (len(cell_ids),))
        i = np.broadcast_to(np.asarray(current, dtype=np.float64), (len(cell_ids),))
        t = np.broadcast_to(np.asarray(temp_c, dtype=np.float64), (len(cell_ids),))
        groups = self._group_by_model(cell_ids)
        fused = self._fused_for(groups, len(cell_ids))
        if fused is not None:
            member = self._member_vector(groups, len(cell_ids))
            with trace_stage("engine.estimate", model="*fused*", rows=len(cell_ids)):
                out = fused.estimate_soc(v, i, t, member)
            if self.metrics is not None:
                for key, idx in groups.items():
                    self._op_counter("estimate", key).inc(len(idx))
        else:
            out = np.empty(len(cell_ids), dtype=self.dtype)
            for key, idx in groups.items():
                with trace_stage("engine.estimate", model=key, rows=len(idx)):
                    out[idx] = self._infer(key).estimate_soc(v[idx], i[idx], t[idx])
                if self.metrics is not None:
                    self._op_counter("estimate", key).inc(len(idx))
        # physics-bounds guard, folded into the state-update loop below:
        # two float compares per cell ride the pass that already
        # materializes each SoC, so the clean path pays ~nothing and the
        # vectorized monitor only runs when a violation actually exists
        bounds = self.drift.bounds if self.drift is not None else None
        in_bounds = True
        states = []
        for k, cid in enumerate(cell_ids):
            state = self._cells[cid]
            soc = float(out[k])
            state.soc = soc
            state.n_requests += 1
            state.last_seen_s = now_s
            states.append(state)
            if bounds is not None and (soc < bounds.soc_min or soc > bounds.soc_max):
                in_bounds = False
        if not in_bounds:
            self.drift.observe_soc(cell_ids, out)
        self._record_many(states)
        return out

    def predict(
        self,
        cell_ids: Sequence[str],
        current_avg,
        temp_avg_c,
        horizon_s,
        soc_now=None,
        commit: bool = False,
        now_s: float | None = None,
    ) -> np.ndarray:
        """Batched Branch 2: what-if SoC(t+N) for many cells at once.

        Parameters
        ----------
        cell_ids:
            Registered cells, one per query row.
        current_avg, temp_avg_c, horizon_s:
            Hypothesized workload per query.
        soc_now:
            Starting SoC per query; defaults to each cell's stored
            estimate (which must then exist).
        commit:
            Overwrite the stored SoC with the prediction (an
            autoregressive fleet step); default leaves state untouched.
        now_s:
            Optional clock reading recorded as ``last_seen_s``.
        """
        if soc_now is None:
            soc = np.empty(len(cell_ids))
            for k, cid in enumerate(cell_ids):
                stored = self.cell(cid).soc
                if stored is None:
                    raise ValueError(f"cell {cid!r} has no stored SoC; estimate first or pass soc_now")
                soc[k] = stored
        else:
            soc = np.broadcast_to(np.asarray(soc_now, dtype=np.float64), (len(cell_ids),))
        i_avg = np.broadcast_to(np.asarray(current_avg, dtype=np.float64), (len(cell_ids),))
        t_avg = np.broadcast_to(np.asarray(temp_avg_c, dtype=np.float64), (len(cell_ids),))
        horizon = np.broadcast_to(np.asarray(horizon_s, dtype=np.float64), (len(cell_ids),))
        groups = self._group_by_model(cell_ids)
        fused = self._fused_for(groups, len(cell_ids))
        if fused is not None:
            member = self._member_vector(groups, len(cell_ids))
            with trace_stage("engine.predict", model="*fused*", rows=len(cell_ids)):
                out = fused.predict_soc(soc, i_avg, t_avg, horizon, member)
            if self.metrics is not None:
                for key, idx in groups.items():
                    self._op_counter("predict", key).inc(len(idx))
        else:
            out = np.empty(len(cell_ids), dtype=self.dtype)
            for key, idx in groups.items():
                with trace_stage("engine.predict", model=key, rows=len(idx)):
                    out[idx] = self._infer(key).predict_soc(
                        soc[idx], i_avg[idx], t_avg[idx], horizon[idx]
                    )
                if self.metrics is not None:
                    self._op_counter("predict", key).inc(len(idx))
        if self.drift is not None:
            self.drift.observe_soc(cell_ids, out, delta=out - soc, horizon_s=horizon)
        states = []
        for k, cid in enumerate(cell_ids):
            state = self._cells[cid]
            if commit:
                state.soc = float(out[k])
            state.n_requests += 1
            state.last_seen_s = now_s
            states.append(state)
        self._record_many(states)
        return out

    # -- batched rollout ------------------------------------------------
    def rollout_fleet(
        self,
        assignments: Iterable[tuple[str, CycleRecord]],
        step_s: float,
        step_hook: Callable[[int], None] | None = None,
    ) -> dict[str, RolloutResult]:
        """Autoregressive rollout for many cells in lock-step.

        Every cell follows its own recorded cycle, but all cells that
        share a serving model advance together: step ``w`` is one
        Branch 2 forward over the still-active cells.  Cells whose
        cycles end early simply drop out of the batch.  Workloads come
        from :func:`repro.core.rollout.cycle_windows` — the same
        numbers the scalar loop uses — so each returned trajectory is
        numerically identical to ``model_rollout(model, cycle, step_s)``
        for that cell.

        With a journal attached, the engine writes a rollout marker,
        then every cell's SoC after every committed window, so a crash
        at any point loses at most the in-flight window (see
        :meth:`resume_rollout_fleet`).

        Parameters
        ----------
        assignments:
            ``(cell_id, cycle)`` pairs; cells not yet registered are
            auto-registered with the cycle's ``chemistry`` tag.
        step_s:
            Full autoregressive step in seconds (shared by the fleet).
        step_hook:
            Optional hook called as ``hook(window)`` after each
            committed window of each model group — for progress
            reporting, throttling, or fault injection in tests.

        Returns
        -------
        dict
            ``{cell_id: RolloutResult}`` in assignment order.
        """
        if self.journal is not None:
            self.journal.begin_rollout(step_s)
        return self._rollout(list(assignments), step_s, prefix={}, step_hook=step_hook)

    def resume_rollout_fleet(
        self,
        assignments: Iterable[tuple[str, CycleRecord]],
        step_s: float,
        step_hook: Callable[[int], None] | None = None,
    ) -> dict[str, RolloutResult]:
        """Finish an interrupted :meth:`rollout_fleet` from the journal.

        Windows the journal already holds are *replayed, not
        recomputed*: each cell picks its recursion back up from its
        last journaled SoC and only the remaining windows run.  JSON
        round-trips floats exactly, and a crash between windows leaves
        every active cell of a model group at the same window, so the
        resumed run re-issues the very same batched forwards the
        uninterrupted run would have — the combined trajectory is
        bit-for-bit identical.  (Resuming under a *different* grouping,
        e.g. another shard count, changes batch compositions and can
        shift results by BLAS-kernel rounding, ~1e-17 — still far
        inside the fleet's 1e-9 equivalence budget.)

        Requires an attached journal whose last rollout used the same
        ``step_s``.
        """
        if self.journal is None:
            raise ValueError("resume requires an engine with a journal attached")
        snap = self.journal.snapshot()
        if snap.step_s is not None and snap.step_s != float(step_s):
            raise ValueError(
                f"journal holds a step_s={snap.step_s:g} rollout; cannot resume at {step_s:g}"
            )
        return self._rollout(list(assignments), step_s, prefix=snap.windows, step_hook=step_hook)

    def _rollout(
        self,
        pairs: list[tuple[str, CycleRecord]],
        step_s: float,
        prefix: dict[str, dict[int, float]],
        step_hook: Callable[[int], None] | None,
    ) -> dict[str, RolloutResult]:
        for cell_id, cycle in pairs:
            if cell_id not in self._cells:
                self.register_cell(cell_id, chemistry=cycle.tags.get("chemistry"))
        # cells sharing one recorded trace share one window plan
        plan_cache: dict[int, object] = {}

        def plan_for(cycle: CycleRecord):
            key = id(cycle)
            if key not in plan_cache:
                plan_cache[key] = cycle_windows(cycle, step_s)
            return plan_cache[key]

        results: dict[str, RolloutResult] = {}
        by_model: dict[str, list[int]] = {}
        for k, (cell_id, _) in enumerate(pairs):
            by_model.setdefault(self._cells[cell_id].model_key, []).append(k)

        # trace attribution without re-indenting the group body: record
        # one explicit engine.rollout span per model group (the kernel's
        # own spans still parent under the ambient context)
        trace_ctx = current_context()
        for key, members in by_model.items():
            t_group = time.perf_counter() if trace_ctx is not None else 0.0
            infer = self._infer(key)
            cycles = [pairs[k][1] for k in members]
            ids = [pairs[k][0] for k in members]
            n = len(members)
            # unique recorded traces: cells following the same cycle share
            # one window plan and one row of the stacked workload arrays,
            # so plan assembly is per *trace*, then fancy-indexed out to
            # the fleet — not rebuilt per cell, element by element
            u_index: dict[int, int] = {}
            u_cycles: list[CycleRecord] = []
            u_of = np.empty(n, dtype=np.intp)
            for r, cycle in enumerate(cycles):
                u = u_index.setdefault(id(cycle), len(u_cycles))
                if u == len(u_cycles):
                    u_cycles.append(cycle)
                u_of[r] = u
            u_plans = [plan_for(c) for c in u_cycles]
            u_nw = np.array([p.n_windows for p in u_plans])
            max_w = int(u_nw.max())
            # padded per-window workload matrices (NaN past each trace's end)
            in_window = np.arange(max_w) < u_nw[:, None]
            u_i = np.full((len(u_plans), max_w), np.nan)
            u_t = np.full((len(u_plans), max_w), np.nan)
            u_h = np.full((len(u_plans), max_w), np.nan)
            u_i[in_window] = np.concatenate([p.i_avg for p in u_plans])
            u_t[in_window] = np.concatenate([p.t_avg for p in u_plans])
            u_h[in_window] = np.concatenate([p.horizon_s for p in u_plans])
            # first sensor sample per trace, for Branch 1 seeding
            u_first = np.array(
                [[c.data.voltage[0], c.data.current[0], c.data.temp_c[0]] for c in u_cycles]
            )
            plans = [u_plans[u] for u in u_of]
            n_w = u_nw[u_of]
            i_mat = u_i[u_of]
            t_mat = u_t[u_of]
            h_mat = u_h[u_of]
            preds = np.empty((n, max_w + 1))
            # observability scratch: the per-window physics residual
            # |predicted ΔSoC − coulomb ΔSoC| (the Branch 2 correction
            # magnitude over Eq. 1) is computed entirely in these
            # buffers, allocated once per model group — the window loop
            # below adds no allocations over the unmonitored path
            monitored = self.metrics is not None or self.drift is not None
            if monitored or self.journal is not None:
                # the harvester needs per-row capacities too (Eq. 1
                # recomputation from journaled workloads)
                cap_row = np.array([c.capacity_ah for c in u_cycles])[u_of]
            if monitored:
                rb_prev = np.empty(n)
                rb_res = np.empty(n)
                rb_tmp = np.empty(n)
                rb_i = np.empty(n)
                rb_h = np.empty(n)
                rb_cap = np.empty(n)
                resid_hist = None
                windows_counter = None
                if self.metrics is not None:
                    self._op_counter("rollout", key).inc(n)
                    resid_hist = self._residual_hist(key)
                    windows_counter = self.metrics.counter("engine_rollout_windows_total", model=key)
                gidx = rb_g = None
                if self.drift is not None:
                    gidx = self.drift.track(ids)
                    rb_g = np.empty(n, dtype=np.intp)
            # replay journaled windows: start_w[r] is the last window
            # whose SoC is already known (its value seeds the recursion)
            start_w = np.zeros(n, dtype=int)
            soc = np.empty(n)
            fresh = []
            for r, cid in enumerate(ids):
                done = prefix.get(cid, {})
                k_done = -1
                while k_done + 1 in done and k_done + 1 <= int(n_w[r]):
                    k_done += 1
                if k_done < 0:
                    fresh.append(r)
                    continue
                for w in range(k_done + 1):
                    preds[r, w] = done[w]
                soc[r] = done[k_done]
                start_w[r] = k_done
            if fresh:
                # one Branch 1 forward seeds all not-yet-started cells;
                # the sensor rows come from the stacked per-trace array
                idx = np.asarray(fresh)
                first = u_first[u_of[idx]]
                seed = infer.estimate_soc(first[:, 0], first[:, 1], first[:, 2])
                soc[idx] = seed
                preds[idx, 0] = seed
                if self.drift is not None:
                    self.drift.observe_soc(ids, seed, positions=idx, window=0)
                if self.journal is not None:
                    self.journal.append_windows((ids[r], 0, float(soc[r])) for r in fresh)
            for w in range(max_w):
                idx = np.flatnonzero((n_w > w) & (start_w <= w))
                if len(idx):
                    m = len(idx)
                    if monitored:
                        np.take(soc, idx, out=rb_prev[:m])
                    out = infer.predict_soc(soc[idx], i_mat[idx, w], t_mat[idx, w], h_mat[idx, w])
                    soc[idx] = out
                    preds[idx, w + 1] = out
                    if monitored:
                        # residual = |(out − prev) − (−I·N / (3600·C))|,
                        # assembled in the preallocated scratch buffers
                        np.take(i_mat[:, w], idx, out=rb_i[:m])
                        np.take(h_mat[:, w], idx, out=rb_h[:m])
                        np.take(cap_row, idx, out=rb_cap[:m])
                        np.subtract(out, rb_prev[:m], out=rb_res[:m])  # predicted ΔSoC
                        if self.drift is not None:
                            self.drift.observe_soc(
                                ids, out, delta=rb_res[:m], horizon_s=rb_h[:m],
                                positions=idx, window=w + 1,
                            )
                        np.multiply(rb_i[:m], rb_h[:m], out=rb_tmp[:m])
                        np.divide(rb_tmp[:m], rb_cap[:m], out=rb_tmp[:m])
                        rb_tmp[:m] /= -3600.0  # coulomb-counting ΔSoC (Eq. 1)
                        np.subtract(rb_res[:m], rb_tmp[:m], out=rb_res[:m])
                        np.abs(rb_res[:m], out=rb_res[:m])
                        if resid_hist is not None:
                            resid_hist.observe_batch(rb_res[:m])
                            windows_counter.inc(m)
                        if self.drift is not None:
                            np.take(gidx, idx, out=rb_g[:m])
                            self.drift.observe_residuals(rb_g[:m], rb_res[:m], window=w + 1)
                    if self.journal is not None:
                        # extended records: the workload that produced the
                        # window rides along for the offline learner
                        self.journal.append_windows(
                            (
                                ids[r],
                                w + 1,
                                float(soc[r]),
                                float(i_mat[r, w]),
                                float(t_mat[r, w]),
                                float(h_mat[r, w]),
                                float(cap_row[r]),
                            )
                            for r in idx
                        )
                if step_hook is not None:
                    step_hook(w + 1)
            states = []
            for r, k in enumerate(members):
                cell_id, cycle = pairs[k]
                p = plans[r]
                results[cell_id] = RolloutResult(
                    time_s=p.time_s.copy(),
                    soc_pred=preds[r, : p.n_windows + 1].copy(),
                    soc_true=p.soc_true.copy(),
                    initial_soc=float(preds[r, 0]),
                    step_s=p.steps * cycle.sampling_period_s,
                    tail_s=p.tail_s,
                )
                state = self._cells[cell_id]
                state.soc = float(preds[r, p.n_windows])
                state.n_requests += 1
                states.append(state)
            self._record_many(states)
            if trace_ctx is not None:
                trace_ctx.tracer.record(
                    trace_ctx,
                    "engine.rollout",
                    t_group,
                    time.perf_counter(),
                    model=key,
                    cells=len(members),
                )
        return {cell_id: results[cell_id] for cell_id, _ in pairs}

    # -- observability -------------------------------------------------
    def metrics_snapshot(self) -> dict | None:
        """JSON snapshot of the attached metrics registry (``None`` without one).

        The uniform readout surface across worker kinds: in-process
        engines answer directly,
        :class:`~repro.serve.workers.ProcessShardWorker` forwards the
        call over the wire, and
        :meth:`ShardedFleet.metrics <repro.serve.sharding.ShardedFleet.metrics>`
        merges the whole topology.
        """
        return None if self.metrics is None else self.metrics.snapshot()

    def drift_events(self) -> list:
        """Drift events from the attached monitor (oldest first).

        The uniform readout surface the retrain pipeline polls: plain
        engines answer from their monitor's ring, workers forward the
        call over the wire, and :meth:`ShardedFleet.drift_events
        <repro.serve.sharding.ShardedFleet.drift_events>` merges the
        whole topology.  Empty without a drift monitor.
        """
        if self.drift is None:
            return []
        return list(self.drift.events())

    def _op_counter(self, op: str, key: str):
        """Cached ``engine_requests_total`` counter for one (op, model)."""
        counter = self._op_counters.get((op, key))
        if counter is None:
            counter = self.metrics.counter(
                "engine_requests_total",
                op=op,
                model=key,
                path="kernel" if self.use_kernel else "tensor",
            )
            self._op_counters[(op, key)] = counter
        return counter

    def _residual_hist(self, key: str):
        """Cached per-model physics-residual histogram."""
        hist = self._residual_hists.get(key)
        if hist is None:
            hist = self.metrics.histogram("engine_physics_residual", model=key)
            self._residual_hists[key] = hist
        return hist

    def _track_size(self, delta: int) -> None:
        """Adjust the fleet-size gauge by ``delta``.

        Delta-based on purpose: in-process shards *share* one registry,
        so ``set(len(self._cells))`` would clobber the gauge with a
        single shard's count — increments from every shard sum to the
        fleet size, matching how :func:`merge_snapshots` sums gauges
        across subprocess workers.
        """
        if self.metrics is not None:
            self.metrics.gauge("engine_cells").inc(delta)

    # ------------------------------------------------------------------
    def _record(self, state: CellState) -> None:
        if self.journal is not None:
            self.journal.append_cell(state)

    def _record_many(self, states: list[CellState]) -> None:
        """Journal a batch of cell states with one write (see ``append_cells``)."""
        if self.journal is not None and states:
            self.journal.append_cells(states)

    def _adopt_state(self, state: CellState) -> None:
        """Install a cell's state record without journaling it.

        Used by :meth:`restore` (the journal already holds the record)
        and by shard rebalancing (the move does not change the state).
        """
        new = state.cell_id not in self._cells
        self._cells[state.cell_id] = state
        resolve = getattr(self.drift, "resolve_cell", None)
        if resolve is not None:
            resolve(state.cell_id, state.chemistry)
        if new:
            self._track_size(1)

    def _evict_state(self, cell_id: str) -> CellState:
        """Remove and return a cell's state without journaling a drop.

        The shard-rebalancing counterpart of :meth:`_adopt_state`: the
        cell is moving, not leaving the fleet.
        """
        state = self._cells.pop(cell_id)
        self._track_size(-1)
        return state

    def _resolve_key(self, chemistry: str | None, model_name: str | None) -> str:
        if model_name is not None:
            if self.registry is None:
                raise ValueError("model_name requires a registry")
            self.registry.describe(model_name)  # fail fast on unknown names
            return model_name
        if self.registry is not None:
            try:
                return self.registry.resolve(chemistry=chemistry)
            except KeyError:
                if _DEFAULT_MODEL_KEY not in self._models:
                    raise
        if _DEFAULT_MODEL_KEY not in self._models:
            raise ValueError("no default model and the registry cannot place this cell")
        return _DEFAULT_MODEL_KEY

    def _model(self, key: str) -> TwoBranchSoCNet:
        if key in self._models:
            return self._models[key]
        # registry keys stay uncached here: the registry re-resolves a
        # bare name's channel pointer on every load (version files are
        # immutable and cached by pinned ref), so a live engine follows
        # publishes and promotes without a rebuild
        return self.registry.load(key)

    def _infer(self, key: str):
        """Serving implementation for a model key: compiled kernel or Tensor model.

        With ``use_kernel`` (the default) the model is compiled once
        into a :class:`~repro.core.kernels.CompiledTwoBranchKernel`,
        cached per model key and invalidated by model-object identity —
        a registry promote that loads a new checkpoint object triggers
        a recompile on its next use (replacing the old entry, so the
        cache stays bounded at one kernel per key) and a live engine
        never serves stale weights.
        """
        model = self._model(key)
        if not self.use_kernel:
            return model
        kernel = self._kernels.get(key)
        if kernel is None or kernel.model is not model:
            kernel = CompiledTwoBranchKernel(model, dtype=self.dtype)
            self._kernels[key] = kernel
        return kernel

    def _fused_for(self, groups: dict[str, np.ndarray], n: int) -> FusedTwoBranchKernel | None:
        """Fused cross-model kernel for a mixed batch (``None`` → per-model loop).

        Fusion pays only on *dispatch-bound* batches — many model
        groups with few rows each, where per-group Python dispatch
        dominates the tiny GEMMs.  Large groups are GEMM-bound and the
        fused scatter/pad overhead loses, so those batches keep the
        per-model loop (measured crossover on the kernel bench: at
        least ``_FUSE_MIN_GROUPS`` groups and at most
        ``_FUSE_MAX_ROWS_PER_GROUP`` rows per group on average).  The
        cache key is the *sorted* model-key set so batch-order
        permutations share one fused kernel; staleness is detected by
        member-kernel identity against ``_infer``'s current compiles,
        and sets whose exported chains cannot be stacked are cached as
        ``None``.
        """
        if not self.fuse_models or not self.use_kernel:
            return None
        if len(groups) < _FUSE_MIN_GROUPS or n > _FUSE_MAX_ROWS_PER_GROUP * len(groups):
            return None
        keys = tuple(sorted(groups))
        kernels = tuple(self._infer(key) for key in keys)
        cached = self._fused.get(keys)
        if cached is not None and all(a is b for a, b in zip(cached[0], kernels)):
            return cached[1]
        try:
            fused = FusedTwoBranchKernel(kernels)
        except ValueError:
            fused = None  # incompatible architectures: fall back per model
        self._fused[keys] = (kernels, fused)
        return fused

    @staticmethod
    def _member_vector(groups: dict[str, np.ndarray], n: int) -> np.ndarray:
        """Per-row member indices matching ``_fused_for``'s sorted key order."""
        member = np.empty(n, dtype=np.intp)
        for u, key in enumerate(sorted(groups)):
            member[groups[key]] = u
        return member

    def _group_by_model(self, cell_ids: Sequence[str]) -> dict[str, np.ndarray]:
        groups: dict[str, list[int]] = {}
        for k, cid in enumerate(cell_ids):
            groups.setdefault(self.cell(cid).model_key, []).append(k)
        return {key: np.asarray(idx) for key, idx in groups.items()}
