"""Fleet-scale inference engine: batched SoC estimation and rollout.

The paper's deployment story is a 2,322-parameter network cheap enough
to run per cell on a BMS; a *fleet* backend inverts the problem — one
process serving thousands of cells.  Calling the model once per cell
wastes almost all wall-clock on Python overhead, because a forward pass
through the two branches is a handful of tiny matmuls.

:class:`FleetEngine` keeps per-cell state (last SoC, chemistry, request
counters), resolves one model per cell (a shared default, or per-
chemistry checkpoints from a :class:`~repro.serve.registry.ModelRegistry`),
and batches every operation across all cells that share a model:

- :meth:`estimate` — one Branch 1 forward for N cells' sensor rows;
- :meth:`predict` — one Branch 2 forward for N what-if queries;
- :meth:`rollout_fleet` — autoregressive rollout advancing N cells per
  step in one matrix op, numerically identical to looping
  :func:`repro.core.rollout.model_rollout` cell by cell (both paths
  consume :func:`repro.core.rollout.cycle_windows` workloads).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

import numpy as np

from ..core.model import TwoBranchSoCNet
from ..core.rollout import RolloutResult, cycle_windows
from ..datasets.base import CycleRecord
from .registry import ModelRegistry

__all__ = ["CellState", "FleetEngine"]

_DEFAULT_MODEL_KEY = "__default__"


@dataclasses.dataclass
class CellState:
    """Mutable serving-side record for one fleet cell.

    Attributes
    ----------
    cell_id:
        Fleet-unique identifier.
    chemistry:
        Chemistry tag used for model resolution (may be ``None``).
    model_key:
        Resolved registry name (or the shared-default sentinel).
    soc:
        Last served SoC estimate (``None`` until the first estimate).
    last_seen_s:
        Clock reading of the most recent request (``None`` untracked).
    n_requests:
        Requests served for this cell since registration.
    """

    cell_id: str
    chemistry: str | None
    model_key: str
    soc: float | None = None
    last_seen_s: float | None = None
    n_requests: int = 0


class FleetEngine:
    """Batched multi-cell server over one or more two-branch models.

    Parameters
    ----------
    default_model:
        Model used for cells the registry cannot place (and for the
        whole fleet when no registry is given).
    registry:
        Optional :class:`ModelRegistry`; cells are routed to
        ``registry.resolve(chemistry=...)`` at registration time.

    At least one of the two must be provided.
    """

    def __init__(
        self,
        default_model: TwoBranchSoCNet | None = None,
        registry: ModelRegistry | None = None,
    ):
        if default_model is None and registry is None:
            raise ValueError("need a default model, a registry, or both")
        self.registry = registry
        self._models: dict[str, TwoBranchSoCNet] = {}
        if default_model is not None:
            self._models[_DEFAULT_MODEL_KEY] = default_model
        self._cells: dict[str, CellState] = {}

    # -- fleet membership ----------------------------------------------
    def register_cell(
        self,
        cell_id: str,
        chemistry: str | None = None,
        model_name: str | None = None,
    ) -> CellState:
        """Add (or re-route) a cell and resolve its serving model.

        Parameters
        ----------
        cell_id:
            Fleet-unique identifier.
        chemistry:
            Chemistry tag; with a registry attached it selects the
            per-chemistry checkpoint.
        model_name:
            Pin the cell to a specific registry model, bypassing
            resolution.
        """
        key = self._resolve_key(chemistry, model_name)
        state = CellState(cell_id=cell_id, chemistry=chemistry, model_key=key)
        self._cells[cell_id] = state
        return state

    def cell(self, cell_id: str) -> CellState:
        """State record for one registered cell.

        Raises
        ------
        KeyError
            When the cell is unknown.
        """
        if cell_id not in self._cells:
            raise KeyError(f"unknown cell {cell_id!r}; {len(self._cells)} cells registered")
        return self._cells[cell_id]

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, cell_id: str) -> bool:
        return cell_id in self._cells

    # -- batched inference ---------------------------------------------
    def estimate(
        self,
        cell_ids: Sequence[str],
        voltage,
        current,
        temp_c,
        now_s: float | None = None,
    ) -> np.ndarray:
        """Batched Branch 1: estimate SoC(t) for many cells at once.

        One forward pass per distinct serving model covers the whole
        batch; each cell's stored SoC is updated with its estimate.

        Parameters
        ----------
        cell_ids:
            Registered cells, one per sensor row.
        voltage, current, temp_c:
            Sensor readings aligned with ``cell_ids``.
        now_s:
            Optional clock reading recorded as ``last_seen_s``.
        """
        v = np.broadcast_to(np.asarray(voltage, dtype=np.float64), (len(cell_ids),))
        i = np.broadcast_to(np.asarray(current, dtype=np.float64), (len(cell_ids),))
        t = np.broadcast_to(np.asarray(temp_c, dtype=np.float64), (len(cell_ids),))
        out = np.empty(len(cell_ids))
        for key, idx in self._group_by_model(cell_ids).items():
            out[idx] = self._model(key).estimate_soc(v[idx], i[idx], t[idx])
        for k, cid in enumerate(cell_ids):
            state = self._cells[cid]
            state.soc = float(out[k])
            state.n_requests += 1
            state.last_seen_s = now_s
        return out

    def predict(
        self,
        cell_ids: Sequence[str],
        current_avg,
        temp_avg_c,
        horizon_s,
        soc_now=None,
        commit: bool = False,
        now_s: float | None = None,
    ) -> np.ndarray:
        """Batched Branch 2: what-if SoC(t+N) for many cells at once.

        Parameters
        ----------
        cell_ids:
            Registered cells, one per query row.
        current_avg, temp_avg_c, horizon_s:
            Hypothesized workload per query.
        soc_now:
            Starting SoC per query; defaults to each cell's stored
            estimate (which must then exist).
        commit:
            Overwrite the stored SoC with the prediction (an
            autoregressive fleet step); default leaves state untouched.
        now_s:
            Optional clock reading recorded as ``last_seen_s``.
        """
        if soc_now is None:
            soc = np.empty(len(cell_ids))
            for k, cid in enumerate(cell_ids):
                stored = self.cell(cid).soc
                if stored is None:
                    raise ValueError(f"cell {cid!r} has no stored SoC; estimate first or pass soc_now")
                soc[k] = stored
        else:
            soc = np.broadcast_to(np.asarray(soc_now, dtype=np.float64), (len(cell_ids),))
        i_avg = np.broadcast_to(np.asarray(current_avg, dtype=np.float64), (len(cell_ids),))
        t_avg = np.broadcast_to(np.asarray(temp_avg_c, dtype=np.float64), (len(cell_ids),))
        horizon = np.broadcast_to(np.asarray(horizon_s, dtype=np.float64), (len(cell_ids),))
        out = np.empty(len(cell_ids))
        for key, idx in self._group_by_model(cell_ids).items():
            out[idx] = self._model(key).predict_soc(soc[idx], i_avg[idx], t_avg[idx], horizon[idx])
        for k, cid in enumerate(cell_ids):
            state = self._cells[cid]
            if commit:
                state.soc = float(out[k])
            state.n_requests += 1
            state.last_seen_s = now_s
        return out

    # -- batched rollout ------------------------------------------------
    def rollout_fleet(
        self,
        assignments: Iterable[tuple[str, CycleRecord]],
        step_s: float,
    ) -> dict[str, RolloutResult]:
        """Autoregressive rollout for many cells in lock-step.

        Every cell follows its own recorded cycle, but all cells that
        share a serving model advance together: step ``w`` is one
        Branch 2 forward over the still-active cells.  Cells whose
        cycles end early simply drop out of the batch.  Workloads come
        from :func:`repro.core.rollout.cycle_windows` — the same
        numbers the scalar loop uses — so each returned trajectory is
        numerically identical to ``model_rollout(model, cycle, step_s)``
        for that cell.

        Parameters
        ----------
        assignments:
            ``(cell_id, cycle)`` pairs; cells not yet registered are
            auto-registered with the cycle's ``chemistry`` tag.
        step_s:
            Full autoregressive step in seconds (shared by the fleet).

        Returns
        -------
        dict
            ``{cell_id: RolloutResult}`` in assignment order.
        """
        pairs = list(assignments)
        for cell_id, cycle in pairs:
            if cell_id not in self._cells:
                self.register_cell(cell_id, chemistry=cycle.tags.get("chemistry"))
        # cells sharing one recorded trace share one window plan
        plan_cache: dict[int, object] = {}

        def plan_for(cycle: CycleRecord):
            key = id(cycle)
            if key not in plan_cache:
                plan_cache[key] = cycle_windows(cycle, step_s)
            return plan_cache[key]

        results: dict[str, RolloutResult] = {}
        by_model: dict[str, list[int]] = {}
        for k, (cell_id, _) in enumerate(pairs):
            by_model.setdefault(self._cells[cell_id].model_key, []).append(k)

        for key, members in by_model.items():
            model = self._model(key)
            plans = [plan_for(pairs[k][1]) for k in members]
            cycles = [pairs[k][1] for k in members]
            n = len(members)
            n_w = np.array([p.n_windows for p in plans])
            max_w = int(n_w.max())
            # padded per-window workload matrices (NaN past each cell's end)
            i_mat = np.full((n, max_w), np.nan)
            t_mat = np.full((n, max_w), np.nan)
            h_mat = np.full((n, max_w), np.nan)
            for r, p in enumerate(plans):
                i_mat[r, : p.n_windows] = p.i_avg
                t_mat[r, : p.n_windows] = p.t_avg
                h_mat[r, : p.n_windows] = p.horizon_s
            # one Branch 1 forward seeds the whole group
            v0 = np.array([c.data.voltage[0] for c in cycles])
            i0 = np.array([c.data.current[0] for c in cycles])
            t0 = np.array([c.data.temp_c[0] for c in cycles])
            soc = model.estimate_soc(v0, i0, t0)
            preds = np.empty((n, max_w + 1))
            preds[:, 0] = soc
            for w in range(max_w):
                idx = np.flatnonzero(n_w > w)
                out = model.predict_soc(soc[idx], i_mat[idx, w], t_mat[idx, w], h_mat[idx, w])
                soc[idx] = out
                preds[idx, w + 1] = out
            for r, k in enumerate(members):
                cell_id, cycle = pairs[k]
                p = plans[r]
                results[cell_id] = RolloutResult(
                    time_s=p.time_s.copy(),
                    soc_pred=preds[r, : p.n_windows + 1].copy(),
                    soc_true=p.soc_true.copy(),
                    initial_soc=float(preds[r, 0]),
                    step_s=p.steps * cycle.sampling_period_s,
                    tail_s=p.tail_s,
                )
                state = self._cells[cell_id]
                state.soc = float(soc[r])
                state.n_requests += 1
        return {cell_id: results[cell_id] for cell_id, _ in pairs}

    # ------------------------------------------------------------------
    def _resolve_key(self, chemistry: str | None, model_name: str | None) -> str:
        if model_name is not None:
            if self.registry is None:
                raise ValueError("model_name requires a registry")
            self.registry.describe(model_name)  # fail fast on unknown names
            return model_name
        if self.registry is not None:
            try:
                return self.registry.resolve(chemistry=chemistry)
            except KeyError:
                if _DEFAULT_MODEL_KEY not in self._models:
                    raise
        if _DEFAULT_MODEL_KEY not in self._models:
            raise ValueError("no default model and the registry cannot place this cell")
        return _DEFAULT_MODEL_KEY

    def _model(self, key: str) -> TwoBranchSoCNet:
        if key in self._models:
            return self._models[key]
        # registry keys stay uncached here: the registry invalidates its
        # own cache on republish, so a live engine picks up new weights
        return self.registry.load(key)

    def _group_by_model(self, cell_ids: Sequence[str]) -> dict[str, np.ndarray]:
        groups: dict[str, list[int]] = {}
        for k, cid in enumerate(cell_ids):
            groups.setdefault(self.cell(cid).model_key, []).append(k)
        return {key: np.asarray(idx) for key, idx in groups.items()}
