"""``repro-soc serve``: the long-running multi-host serving daemon.

Everything below existed as parts — :class:`~repro.serve.gateway.SocGateway`
for admission + micro-batching, :class:`~repro.serve.sharding.ShardedFleet`
for placement, :class:`~repro.monitor.autopilot.ControlLoop` for healing
and canary steering, :class:`~repro.monitor.exposition.ExpositionServer`
for scrapes — but only wired together inside one simulation process
(``serve-sim``).  :class:`SocDaemon` is the deployment shape: one
process that owns those pieces *indefinitely*, listens on a control URL
(``unix://`` or ``tcp://``, same :mod:`~repro.serve.transport` frames as
the workers), and lets two kinds of peers dial in:

- **clients** (:class:`~repro.serve.client.SocClient`): pickle-framed
  request ops (``estimate``/``predict``/``rollout``/registration/
  stats) bridged onto the gateway's asyncio loop — one connection, one
  handler thread, requests resolved through the same micro-batcher as
  every other client's;
- **workers** (``repro-soc worker --connect``): a ``worker_hello``
  frame flips the connection's roles — the daemon wraps the transport
  in a :class:`~repro.serve.workers.RemoteShardWorker` and the dialer
  becomes a served shard.  Registration by name makes
  restart-by-reconnect work: a worker that crashes and dials back in
  is re-attached to its old shard (journal restore + ``init`` over the
  new transport), not added as new capacity.  Workers can also be
  registered *outbound* by URL (``add_worker``) when the daemon can
  reach them.

Concurrency: the gateway's batcher lock is the one serialization
point, exactly as in-process — client handler threads take it for
direct engine ops, the control thread takes it for heartbeat probes
and heal ticks (transport frames must never interleave with traffic),
and the asyncio loop's executor takes it for batched inference.  The
exposition server stays lock-free (cached health, snapshot metrics),
so ``/metrics`` and ``/healthz`` answer even while a worker is dead
and healing.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading

from ..monitor.autopilot import ControlLoop
from .gateway import SocGateway
from .transport import Transport, TransportError, TransportListener, TransportTimeout
from .workers import RemoteShardWorker, WorkerSpec, _build_model

__all__ = ["SocDaemon", "run_daemon"]

_CLIENT_OPS = (
    "hello",
    "ping",
    "estimate",
    "predict",
    "rollout",
    "register_cell",
    "deregister_cell",
    "reroute_cell",
    "cell",
    "cells",
    "len",
    "contains",
    "stats",
    "metrics",
    "worker_health",
    "heartbeat",
    "add_worker",
    "drift_events",
    "publish",
    "promote",
    "rollback",
    "shutdown",
)


class SocDaemon:
    """One long-running serving plane: gateway + control loop + scrapes.

    Parameters
    ----------
    engine:
        The fleet to serve — a :class:`~repro.serve.engine.FleetEngine`
        or (for worker registration / healing to mean anything) a
        :class:`~repro.serve.sharding.ShardedFleet`.  The daemon owns
        it: :meth:`stop` closes it.
    listen:
        Control URL to accept clients and inbound workers on
        (``unix:///path`` or ``tcp://host:port``; port 0 binds an
        ephemeral port — read :attr:`url`).
    worker_spec:
        Template :class:`~repro.serve.workers.WorkerSpec` for workers
        that join later (``worker_hello`` or ``add_worker``): model,
        registry root, journal template, monitor/trace flags.  Without
        it, inbound workers are rejected and ``add_worker`` needs the
        fleet's own spec template.
    max_batch, max_delay_s, max_in_flight, metrics, tracer:
        Passed to the :class:`~repro.serve.gateway.SocGateway`.
    control_interval_s:
        Control-plane pacing: every interval the daemon takes the
        batcher lock, pings probe-capable workers
        (:meth:`ShardedFleet.heartbeat
        <repro.serve.sharding.ShardedFleet.heartbeat>`), and runs one
        :class:`~repro.monitor.autopilot.ControlLoop` tick (heal dead
        workers, steer the canary).  0 disables the thread; call
        :meth:`control_tick` yourself.
    autopilot, probe:
        Optional canary policy + divergence probe for the control loop.
        With an autopilot attached, the registry ops (``publish`` to the
        canary channel, ``promote``, ``rollback``) route through its
        :class:`~repro.serve.canary.CanaryController`, so remote
        retrain pipelines and the in-daemon steering never race on
        ``channels.json``.
    retrain:
        Optional retrain loop (e.g. :class:`repro.learn.RetrainLoop`)
        run as part of every control tick, after canary steering — the
        fully closed drift → retrain → canary → promote loop.
    exposition_host, exposition_port:
        Bind an :class:`~repro.monitor.exposition.ExpositionServer`
        (``/metrics``, ``/traces``, ``/healthz``) when
        ``exposition_port`` is not ``None`` (0 = ephemeral; read
        :attr:`exposition_url`).
    """

    def __init__(
        self,
        engine,
        listen: str,
        *,
        worker_spec: WorkerSpec | None = None,
        max_batch: int = 64,
        max_delay_s: float = 0.010,
        max_in_flight: int = 1024,
        metrics=None,
        tracer=None,
        control_interval_s: float = 1.0,
        autopilot=None,
        probe=None,
        retrain=None,
        heartbeat_timeout_s: float = 2.0,
        exposition_host: str = "127.0.0.1",
        exposition_port: int | None = None,
    ):
        self.engine = engine
        self.worker_spec = worker_spec
        self.autopilot = autopilot
        self.gateway = SocGateway(
            engine,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            max_in_flight=max_in_flight,
            metrics=metrics,
            tracer=tracer,
        )
        self.control = ControlLoop(
            engine=engine,
            autopilot=autopilot,
            probe=probe,
            retrain=retrain,
            interval_s=control_interval_s,
            metrics=self.gateway.metrics,
        )
        self.control_interval_s = float(control_interval_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self._listener = TransportListener(listen)
        self.url = str(self._listener.url)
        self.exposition = None
        if exposition_port is not None:
            from ..monitor.exposition import ExpositionServer

            self.exposition = ExpositionServer(
                metrics=self.gateway.metrics_snapshot,
                tracer=tracer,
                health=self._health,
                host=exposition_host,
                port=exposition_port,
            )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._accept_thread: threading.Thread | None = None
        self._control_thread: threading.Thread | None = None
        self._client_threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._started = False

    # -- lifecycle -----------------------------------------------------
    @property
    def exposition_url(self) -> str | None:
        """Base URL of the scrape endpoint (``None`` when not exposed)."""
        return None if self.exposition is None else self.exposition.url

    def start(self) -> SocDaemon:
        """Bring the plane up: asyncio loop, acceptor, control thread, scrapes."""
        if self._started:
            return self
        self._started = True
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()

        def _run_loop() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(ready.set)
            self._loop.run_forever()

        self._loop_thread = threading.Thread(target=_run_loop, name="soc-daemon-loop", daemon=True)
        self._loop_thread.start()
        ready.wait()
        self._await(self._async_start_gateway())
        if self.exposition is not None:
            self.exposition.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="soc-daemon-accept", daemon=True
        )
        self._accept_thread.start()
        if self.control_interval_s > 0:
            self._control_thread = threading.Thread(
                target=self._control_loop, name="soc-daemon-control", daemon=True
            )
            self._control_thread.start()
        return self

    def stop(self) -> None:
        """Drain and tear down: listener, gateway, workers, scrapes."""
        if not self._started or self._stopping.is_set():
            self._stopping.set()
            return
        self._stopping.set()
        self._listener.close()
        for thread in (self._accept_thread, self._control_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        for thread in list(self._client_threads):
            thread.join(timeout=5.0)
        self._await(self.gateway.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=5.0)
        self._loop.close()
        if self.exposition is not None:
            self.exposition.stop()
        closer = getattr(self.engine, "close", None)
        if closer is not None:
            closer()

    def wait(self, timeout_s: float | None = None) -> bool:
        """Block until :meth:`stop` is requested (a client ``shutdown``
        op, or another thread); returns whether it was."""
        return self._stopping.wait(timeout=timeout_s)

    def __enter__(self) -> SocDaemon:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def control_tick(self) -> dict:
        """One control-plane pass under the batcher lock (probe + heal)."""
        with self.gateway.batcher.lock:
            heartbeat = getattr(self.engine, "heartbeat", None)
            if heartbeat is not None:
                heartbeat(self.heartbeat_timeout_s)
            return self.control.tick()

    # -- internals -----------------------------------------------------
    async def _async_start_gateway(self) -> None:
        self.gateway.start()

    def _await(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def _health(self) -> dict:
        # the daemon answering IS the liveness signal; worker state is
        # detail (a dead worker mid-heal must not flip /healthz to 503)
        health = getattr(self.engine, "worker_health", None)
        workers = health() if health is not None else []
        return {"ok": True, "workers": list(workers), "url": self.url}

    def _control_loop(self) -> None:
        while not self._stopping.wait(self.control_interval_s):
            try:
                self.control_tick()
            except Exception:
                continue  # one bad tick must not kill the control plane

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                peer = self._listener.accept(timeout_s=0.25)
            except TransportTimeout:
                continue
            except TransportError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_connection, args=(peer,), name="soc-daemon-client", daemon=True
            )
            self._client_threads.append(thread)
            thread.start()

    def _serve_connection(self, transport: Transport) -> None:
        """Serve one inbound connection until it closes (or flips roles)."""
        handed_off = False
        try:
            while not self._stopping.is_set():
                # idle-wait without a recv deadline: a deadline poisons
                # the stream, wait_readable just polls the stop flag
                if not transport.wait_readable(timeout_s=0.25):
                    continue
                try:
                    frame = transport.recv_frame()
                except TransportError:
                    break
                if frame is None:
                    break
                op, args, kwargs = frame
                if op == "worker_hello":
                    # role flip: the dialer is a worker, not a client.
                    # Reply first (the worker waits for the ack before
                    # serving), then hand the transport to the fleet.
                    name = args[0] if args else kwargs.get("name", "worker")
                    try:
                        transport.send_pickle(("ok", "attach"))
                        self._attach_worker(str(name), transport)
                    except Exception:
                        break
                    handed_off = True
                    return  # the transport now belongs to the shard worker
                try:
                    result = self._dispatch(op, args, kwargs)
                except Exception as exc:
                    try:
                        transport.send_pickle(("err", type(exc).__name__, str(exc)))
                    except TransportError:
                        break
                else:
                    try:
                        transport.send_pickle(("ok", result))
                    except TransportError:
                        break
                if op == "shutdown":
                    threading.Thread(target=self.stop, daemon=True).start()
                    break
        finally:
            if not handed_off:
                transport.close()

    def _attach_worker(self, name: str, transport: Transport) -> None:
        """Re-attach a returning worker by name, or adopt it as new capacity."""
        with self.gateway.batcher.lock:
            reattach = getattr(self.engine, "reattach_worker", None)
            if reattach is not None and reattach(name, transport) is not None:
                return
            spec = self.worker_spec
            if spec is None:
                raise RuntimeError(
                    "daemon has no worker_spec; inbound workers cannot be provisioned"
                )
            adopt = getattr(self.engine, "adopt_worker", None)
            if adopt is None:
                raise RuntimeError("engine does not accept workers (not a ShardedFleet)")
            worker = RemoteShardWorker.from_transport(
                transport,
                name=name,
                default_model=spec.model,
                registry_root=(
                    spec.registry.root if hasattr(spec.registry, "root") else spec.registry
                ),
                journal_path=self._join_journal_path(name),
                use_kernel=spec.use_kernel,
                monitor=spec.monitor,
                trace=spec.trace,
                archive_root=spec.archive_root,
                journal_segment_bytes=spec.journal_segment_bytes,
                drift_from_registry=spec.drift_from_registry,
            )
            adopt(worker)

    def _join_journal_path(self, name: str) -> str | None:
        journal = None if self.worker_spec is None else self.worker_spec.journal
        if journal is None:
            return None
        template = str(journal)
        if "{shard}" in template:
            return template.format(shard=name)
        return f"{template}.{name}"

    def _dispatch(self, op: str, args: tuple, kwargs: dict):
        """One client op; engine mutations go under the batcher lock."""
        gateway = self.gateway
        if op == "hello":
            return {"service": "repro-soc", "url": self.url, "ops": list(_CLIENT_OPS)}
        if op == "ping":
            return "pong"
        if op == "estimate":
            completion = self._await(gateway.estimate(*args, **kwargs))
            if completion.error is not None:
                raise RuntimeError(completion.error)
            return float(completion.value)
        if op == "predict":
            completion = self._await(gateway.predict(*args, **kwargs))
            if completion.error is not None:
                raise RuntimeError(completion.error)
            return float(completion.value)
        if op == "rollout":
            return self._await(gateway.rollout(*args, **kwargs))
        if op == "stats":
            return gateway.stats_dict()
        if op == "metrics":
            return gateway.metrics_snapshot()
        if op == "worker_health":
            health = getattr(self.engine, "worker_health", None)
            return [] if health is None else list(health())
        if op == "heartbeat":
            with gateway.batcher.lock:
                heartbeat = getattr(self.engine, "heartbeat", None)
                return [] if heartbeat is None else list(heartbeat(self.heartbeat_timeout_s))
        if op == "add_worker":
            with gateway.batcher.lock:
                add = getattr(self.engine, "add_worker", None)
                if add is None:
                    raise RuntimeError("engine does not accept workers (not a ShardedFleet)")
                spec = args[0]
                if isinstance(spec, str) and self.worker_spec is not None:
                    spec = _respec(self.worker_spec, spec)
                return int(add(spec))
        if op == "shutdown":
            return "stopping"
        with gateway.batcher.lock:
            if op == "cells":
                return list(self.engine.cells())
            if op == "len":
                return len(self.engine)
            if op == "contains":
                return args[0] in self.engine
            if op == "drift_events":
                fetch = getattr(self.engine, "drift_events", None)
                return [] if fetch is None else list(fetch())
            if op == "publish":
                return self._publish(*args, **kwargs)
            if op in ("promote", "rollback"):
                return self._steer_channel(op, *args)
            if op in ("register_cell", "deregister_cell", "reroute_cell", "cell"):
                return getattr(self.engine, op)(*args, **kwargs)
        raise RuntimeError(f"unknown daemon op {op!r}")

    # -- registry ops (batcher lock held) -------------------------------
    def _registry(self):
        registry = getattr(self.engine, "registry", None)
        if registry is None:
            raise RuntimeError("engine has no model registry attached")
        return registry

    def _controller_for(self, name: str):
        """The autopilot's canary controller, when it steers ``name``."""
        controller = getattr(self.autopilot, "controller", None)
        if controller is not None and getattr(controller, "name", None) == name:
            return controller
        return None

    def _publish(
        self,
        name: str,
        model_spec: dict,
        chemistry: str | None = None,
        dataset: str | None = None,
        extra: dict | None = None,
        channel: str = "stable",
    ) -> int:
        """Publish a candidate shipped as a wire spec; returns its version.

        A canary-channel publish for the autopilot's model routes
        through its :class:`~repro.serve.canary.CanaryController`
        (publish + pin the traffic slice in one step), so a remote
        retrain pipeline starts a *steered* canary rather than racing
        the control loop on ``channels.json``.
        """
        model = _build_model(model_spec)
        if model is None:
            raise ValueError("publish needs a model spec (config + weights)")
        if channel == "canary":
            controller = self._controller_for(name)
            if controller is not None:
                if controller.active:
                    raise ValueError(
                        f"canary of {name!r} already active; promote or roll back first"
                    )
                return int(
                    controller.start(
                        candidate=model, chemistry=chemistry, dataset=dataset, extra=extra
                    )
                )
        entry = self._registry().publish(
            name, model, chemistry=chemistry, dataset=dataset, extra=extra, channel=channel
        )
        return int(entry.version)

    def _steer_channel(self, op: str, name: str) -> int:
        """Promote/rollback ``name``, through the controller when it steers it."""
        controller = self._controller_for(name)
        if controller is not None and controller.active:
            return int(getattr(controller, op)())
        return int(getattr(self._registry(), op)(name))


def _respec(template: WorkerSpec, url: str) -> WorkerSpec:
    return dataclasses.replace(template, url=url, spawn=False)


def run_daemon(daemon: SocDaemon, announce=print) -> int:
    """CLI run loop: start, announce the control/scrape URLs, block."""
    daemon.start()
    announce(f"daemon listening on {daemon.url}")
    if daemon.exposition_url is not None:
        announce(f"exposition at {daemon.exposition_url}")
    try:
        daemon.wait()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.stop()
    return 0
