"""``repro.monitor`` — live observability and the fleet control plane.

The watchdog layer over :mod:`repro.serve`: every serving component can
feed a shared :class:`MetricsRegistry`, residual streams flow through
O(1)-per-cell drift detectors, and an auto-pilot turns the canary
lifecycle from "a human reads a shadow report" into a closed loop on
live traffic.

- :mod:`repro.monitor.metrics` — :class:`MetricsRegistry`: labeled
  counters/gauges/streaming-quantile histograms (P² sketches — p50/p95/
  p99 without storing samples), JSON snapshots, Prometheus text
  exposition, and cross-process snapshot merging;
- :mod:`repro.monitor.drift` — :class:`DriftMonitor`: vectorized
  Page–Hinkley and CUSUM banks over per-cell physics-residual streams,
  physics-bounds checks (SoC range, chemistry-derived rate ceiling),
  typed :class:`DriftEvent` records in a bounded ring buffer;
- :mod:`repro.monitor.autopilot` — :class:`AutoCanaryPolicy` +
  :class:`DivergenceProbe` + :class:`ControlLoop`: live stable-vs-
  candidate divergence measured through the serving path, an EWMA
  budget / drift-veto / cooldown decision rule, automatic
  ``CanaryController.promote()/rollback()``;
- :mod:`repro.monitor.tracing` — :class:`SpanTracer`: sampling span
  tracer with explicit :class:`TraceContext` propagation through the
  serving path (gateway → batcher → shards → wire → worker → kernel),
  slow-trace tail capture, per-stage histogram rollup, and Chrome
  trace-event export;
- :mod:`repro.monitor.exposition` — :class:`ExpositionServer`: a
  stdlib-threaded HTTP endpoint serving ``/metrics`` (Prometheus
  text), ``/traces`` (span trees as JSON), and ``/healthz``.

See ``src/repro/monitor/README.md`` for signal definitions, the
exposition formats, the span taxonomy, and the autopilot decision rule.
"""

from .autopilot import AutoCanaryPolicy, AutopilotConfig, ControlLoop, DivergenceProbe, ProbeTiming
from .drift import (
    ChemistryDriftRouter,
    Cusum,
    CusumConfig,
    DriftEvent,
    DriftMonitor,
    PageHinkley,
    PageHinkleyConfig,
    PhysicsBounds,
    residual_stream,
)
from .exposition import ExpositionServer
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    escape_label_value,
    merge_snapshots,
    prometheus_text,
)
from .resources import ResourceSampler, install_process_metrics, read_process_stats
from .tracing import Span, SpanTracer, TraceContext, activate, current_context, stage

__all__ = [
    "AutoCanaryPolicy",
    "AutopilotConfig",
    "ChemistryDriftRouter",
    "ControlLoop",
    "Counter",
    "Cusum",
    "CusumConfig",
    "DivergenceProbe",
    "DriftEvent",
    "DriftMonitor",
    "ExpositionServer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
    "PageHinkley",
    "PageHinkleyConfig",
    "PhysicsBounds",
    "ProbeTiming",
    "ResourceSampler",
    "Span",
    "SpanTracer",
    "TraceContext",
    "activate",
    "current_context",
    "escape_label_value",
    "install_process_metrics",
    "merge_snapshots",
    "prometheus_text",
    "read_process_stats",
    "residual_stream",
    "stage",
]
