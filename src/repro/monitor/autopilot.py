"""Auto-piloted canaries: live divergence probing and promote/rollback policy.

PR 2's :class:`~repro.serve.canary.CanaryController` stages a candidate
checkpoint on a hash-selected fleet slice and judges it by *offline*
shadow replay — a human runs ``evaluate()`` and then decides.  This
module closes that loop on live traffic:

- :class:`DivergenceProbe` measures the **live** stable-vs-candidate
  divergence through the serving path itself.  Canary-pinned cells and
  stable-routed cells are given the *same* probe queries (a grid of
  ``soc_now`` starting points under a fixed workload, via
  ``engine.predict(..., commit=False)``); since Branch 2 is a pure
  function of its inputs, any difference between the two groups'
  outputs is exactly the checkpoint divergence — measured through
  whatever topology is serving (single engine, in-process shards, or
  subprocess workers), with no second engine and no state disturbance.
- :class:`AutoCanaryPolicy` folds those probes into an EWMA and applies
  the decision rule: **veto** (fresh drift/physics events since the
  canary started → roll back), **hard ceiling** (any probe above
  ``hard_divergence`` → roll back), **budget** (after
  ``min_observations`` probes, EWMA within ``divergence_budget`` →
  promote, above it → roll back), otherwise **hold**.  Decisions drive
  ``CanaryController.promote()/rollback()`` directly, and a cooldown
  keeps the policy quiet for a few ticks after every verdict.
- :class:`ControlLoop` ticks the whole control plane: restart dead
  shard workers (``engine.restart_dead_workers()``), run the probe,
  step the policy — one call per monitoring interval, driven by a
  scheduler, a thread, or a test loop.

Everything here is duck-typed against the serving API (``cells()`` /
``predict`` / ``reroute_cell`` and the controller's
``active``/``promote``/``rollback``), deliberately importing nothing
from :mod:`repro.serve` so the monitor package stays import-cycle-free.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable

import numpy as np

from .drift import DriftMonitor
from .metrics import MetricsRegistry

__all__ = ["AutoCanaryPolicy", "AutopilotConfig", "ControlLoop", "DivergenceProbe", "ProbeTiming"]


@dataclasses.dataclass(frozen=True)
class ProbeTiming:
    """Serving-path latency of one probe measurement, per arm.

    Each is the *minimum* per-grid-point wall time of the batched
    ``predict`` against that arm's cells — the minimum because a probe
    tick issues several identical calls and the best one is the least
    noisy estimate of the path cost (a one-off scheduling stall or a
    first-use kernel compile should not fail a good candidate).
    """

    candidate_s: float
    stable_s: float

    @property
    def ratio(self) -> float:
        """Candidate-over-stable latency (1.0 = parity; inf when stable is 0)."""
        if self.stable_s <= 0.0:
            return 1.0 if self.candidate_s <= 0.0 else float("inf")
        return self.candidate_s / self.stable_s


@dataclasses.dataclass(frozen=True)
class AutopilotConfig:
    """Decision rule for :class:`AutoCanaryPolicy`.

    Attributes
    ----------
    min_observations:
        Probe ticks required before a promote/rollback verdict (holds
        until then, unless a veto or hard ceiling fires first).
    divergence_budget:
        EWMA divergence (absolute SoC units, as in the paper's error
        metrics) a candidate must stay within to promote.
    hard_divergence:
        Any single probe above this rolls back immediately — no need
        to average a checkpoint that is obviously wrong.
    ewma_alpha:
        EWMA smoothing factor (1.0 = last probe only).
    cooldown_ticks:
        Ticks the policy stays idle after a promote or rollback, so a
        freshly started canary is not judged on stale state.
    veto_kinds:
        Drift-event kinds that veto promotion; any fresh event of one
        of these kinds since the canary started forces a rollback.
    latency_budget:
        Maximum candidate-over-stable serving-latency ratio (EWMA of
        :attr:`ProbeTiming.ratio`) a candidate may hold at promote
        time; above it the would-be promote becomes a rollback — a
        checkpoint that is accurate but slow must not ship.  ``None``
        (the default) disables the latency gate.
    """

    min_observations: int = 5
    divergence_budget: float = 0.01
    hard_divergence: float = 0.25
    ewma_alpha: float = 0.3
    cooldown_ticks: int = 2
    veto_kinds: tuple[str, ...] = ("page_hinkley", "cusum", "soc_bounds", "soc_rate")
    latency_budget: float | None = None


class DivergenceProbe:
    """Measure live stable-vs-candidate divergence through the serving path.

    Parameters
    ----------
    engine:
        The live fleet (anything with ``cells()`` and the batched
        ``predict`` API — a ``FleetEngine`` or ``ShardedFleet`` over
        any worker kind).
    controller:
        The :class:`~repro.serve.canary.CanaryController` whose pinned
        slice is being judged.
    soc_grid:
        ``soc_now`` starting points probed each measurement.
    current_a, temp_c, horizon_s:
        The fixed probe workload.
    sample:
        Cells sampled per group (both groups get identical inputs, so
        one cell per group already isolates the checkpoint difference;
        more adds cross-shard coverage).
    """

    def __init__(
        self,
        engine,
        controller,
        soc_grid: tuple[float, ...] = (0.2, 0.5, 0.8),
        current_a: float = 1.0,
        temp_c: float = 25.0,
        horizon_s: float = 60.0,
        sample: int = 4,
    ):
        if sample < 1:
            raise ValueError("sample must be at least 1")
        self.engine = engine
        self.controller = controller
        self.soc_grid = tuple(float(s) for s in soc_grid)
        self.current_a = float(current_a)
        self.temp_c = float(temp_c)
        self.horizon_s = float(horizon_s)
        self.sample = sample
        self.last_timing: ProbeTiming | None = None

    def measure(self) -> np.ndarray | None:
        """Per-grid-point ``|SoC_candidate − SoC_stable|``, or ``None``.

        ``None`` means there is nothing to probe: no active canary, or
        one of the two groups has no cells (e.g. fraction 1.0 pinned
        the whole fleet).

        As a side channel, each successful measurement also records the
        serving-path wall time of the two probe arms in
        :attr:`last_timing` (the latency signal the autopilot's
        ``latency_budget`` gate consumes) — both arms issue identical
        batched predicts, so the timing difference is the candidate
        checkpoint's serving cost, measured through whatever topology
        is live.
        """
        self.last_timing = None
        if not self.controller.active:
            return None
        pinned = self.controller.canary_cells()[: self.sample]
        if not pinned:
            return None
        pinned_set = set(self.controller.canary_cells())
        stable = []
        for state in self.engine.cells():
            if state.model_key == self.controller.name and state.cell_id not in pinned_set:
                stable.append(state.cell_id)
                if len(stable) >= self.sample:
                    break
        if not stable:
            return None
        diffs = np.empty(len(self.soc_grid))
        t_candidate = t_stable = float("inf")
        for k, soc in enumerate(self.soc_grid):
            t0 = time.perf_counter()
            out_candidate = self.engine.predict(
                pinned, self.current_a, self.temp_c, self.horizon_s, soc_now=soc
            )
            t1 = time.perf_counter()
            out_stable = self.engine.predict(stable, self.current_a, self.temp_c, self.horizon_s, soc_now=soc)
            t2 = time.perf_counter()
            t_candidate = min(t_candidate, t1 - t0)
            t_stable = min(t_stable, t2 - t1)
            diffs[k] = abs(float(out_candidate.mean()) - float(out_stable.mean()))
        self.last_timing = ProbeTiming(candidate_s=t_candidate, stable_s=t_stable)
        return diffs


class AutoCanaryPolicy:
    """Promote/hold/rollback decisions over the live divergence series.

    Feed it probe measurements (:meth:`observe` or directly via
    :meth:`step`); it tracks an EWMA of the mean divergence, watches a
    :class:`~repro.monitor.drift.DriftMonitor` for veto events, and
    drives the controller when a verdict is reached.  Decisions land in
    the metrics registry as ``autopilot_decisions_total{decision=...}``
    and the policy state is inspectable (:attr:`ewma`,
    :attr:`observations`).
    """

    def __init__(
        self,
        controller,
        drift: DriftMonitor | None = None,
        config: AutopilotConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.controller = controller
        self.drift = drift
        self.config = config if config is not None else AutopilotConfig()
        self.metrics = metrics
        self.ewma: float | None = None
        self.last_max: float | None = None
        self.latency_ewma: float | None = None
        self.observations = 0
        self.cooldown = 0
        self.last_reason: str | None = None
        self._watched_version: int | None = None
        self._drift_baseline: dict[str, int] = {}

    # -- observation -----------------------------------------------------
    def observe(
        self, divergences: np.ndarray | None, latency: ProbeTiming | None = None
    ) -> None:
        """Fold one probe measurement into the EWMAs (``None`` is a no-op).

        ``latency`` is the probe's :attr:`DivergenceProbe.last_timing`;
        its candidate-over-stable ratio feeds :attr:`latency_ewma`, the
        series the ``latency_budget`` gate judges at promote time.
        """
        self._sync_canary()
        if divergences is None or len(divergences) == 0:
            return
        mean = float(np.mean(divergences))
        self.last_max = float(np.max(divergences))
        alpha = self.config.ewma_alpha
        self.ewma = mean if self.ewma is None else alpha * mean + (1 - alpha) * self.ewma
        if latency is not None:
            ratio = float(latency.ratio)
            self.latency_ewma = (
                ratio if self.latency_ewma is None else alpha * ratio + (1 - alpha) * self.latency_ewma
            )
        self.observations += 1

    # -- decision --------------------------------------------------------
    def decide(self) -> str:
        """Current verdict: ``promote`` / ``rollback`` / ``hold`` / ``idle``.

        :attr:`last_reason` records why (``drift-veto`` /
        ``hard-divergence`` / ``over-budget`` / ``latency`` / ...), for
        operators and tests — it is deliberately *not* a metrics label,
        so the ``autopilot_decisions_total`` series stays low-cardinality.
        """
        self._sync_canary()
        if not self.controller.active:
            self.last_reason = "idle"
            return "idle"
        if self.cooldown > 0:
            self.last_reason = "cooldown"
            return "hold"
        if self._fresh_veto_events() > 0:
            self.last_reason = "drift-veto"
            return "rollback"
        cfg = self.config
        if self.last_max is not None and self.last_max > cfg.hard_divergence:
            self.last_reason = "hard-divergence"
            return "rollback"
        if self.observations < cfg.min_observations or self.ewma is None:
            self.last_reason = "warming-up"
            return "hold"
        if self.ewma > cfg.divergence_budget:
            self.last_reason = "over-budget"
            return "rollback"
        # accuracy passed; the latency gate gets the last word
        if (
            cfg.latency_budget is not None
            and self.latency_ewma is not None
            and self.latency_ewma > cfg.latency_budget
        ):
            self.last_reason = "latency"
            return "rollback"
        self.last_reason = "within-budget"
        return "promote"

    def step(
        self,
        divergences: np.ndarray | None = None,
        latency: ProbeTiming | None = None,
    ) -> str:
        """Observe, decide, and *act*: drives the controller on a verdict.

        Returns the decision actually applied.  ``promote`` calls
        ``controller.promote()``, ``rollback`` calls
        ``controller.rollback()``; both start the cooldown.
        """
        if self.cooldown > 0:
            self.cooldown -= 1
        self.observe(divergences, latency=latency)
        decision = self.decide()
        if decision == "promote":
            self.controller.promote()
            self._reset_after_verdict()
        elif decision == "rollback":
            self.controller.rollback()
            self._reset_after_verdict()
        if self.metrics is not None:
            self.metrics.counter("autopilot_decisions_total", decision=decision).inc()
        return decision

    # ----------------------------------------------------------------
    def _sync_canary(self) -> None:
        """Reset judgement state when a new canary starts (or none runs)."""
        version = self.controller.candidate_version if self.controller.active else None
        if version != self._watched_version:
            self._watched_version = version
            self.ewma = None
            self.last_max = None
            self.latency_ewma = None
            self.observations = 0
            if self.drift is not None:
                self._drift_baseline = self.drift.event_counts()

    def _fresh_veto_events(self) -> int:
        """Veto-kind events emitted since the watched canary started."""
        if self.drift is None:
            return 0
        counts = self.drift.event_counts()
        baseline = self._drift_baseline
        return sum(max(0, counts.get(kind, 0) - baseline.get(kind, 0)) for kind in self.config.veto_kinds)

    def _reset_after_verdict(self) -> None:
        self.cooldown = self.config.cooldown_ticks
        self._watched_version = None
        self.ewma = None
        self.last_max = None
        self.latency_ewma = None
        self.observations = 0


class ControlLoop:
    """One tick of the control plane: heal workers, probe, steer the canary.

    Parameters
    ----------
    engine:
        Optional fleet; when it exposes ``restart_dead_workers()``
        (see :class:`~repro.serve.sharding.ShardedFleet`) each tick
        heals dead shard workers before probing.
    autopilot, probe:
        Optional policy and its divergence probe; a tick feeds the
        probe measurement (and its latency timing) into
        ``autopilot.step``.
    retrain:
        Optional retrain loop (duck-typed: anything with ``tick() ->
        dict``, see :class:`repro.learn.RetrainLoop`); each pass runs
        it *after* canary steering, so a verdict that just freed the
        canary channel lets a pending retrain publish on the very next
        tick.
    interval_s, clock:
        Pacing for :meth:`run`; tests call :meth:`tick` directly.
    """

    def __init__(
        self,
        engine=None,
        autopilot: AutoCanaryPolicy | None = None,
        probe: DivergenceProbe | None = None,
        retrain=None,
        interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
    ):
        self.engine = engine
        self.autopilot = autopilot
        self.probe = probe
        self.retrain = retrain
        self.interval_s = float(interval_s)
        self.clock = clock
        self.metrics = metrics
        self.ticks = 0

    def tick(self) -> dict:
        """Run one control-plane pass; returns what happened.

        Keys: ``restarted`` (shard indices healed), ``divergence``
        (mean of this tick's probe, or ``None``), ``decision`` (the
        autopilot verdict, or ``None`` without an autopilot),
        ``retrain`` (the retrain loop's tick report, or ``None``
        without one).
        """
        self.ticks += 1
        restarted: list[int] = []
        if self.engine is not None:
            restart = getattr(self.engine, "restart_dead_workers", None)
            if restart is not None:
                restarted = restart()
        divergences = self.probe.measure() if self.probe is not None else None
        decision = None
        if self.autopilot is not None:
            decision = self.autopilot.step(
                divergences, latency=getattr(self.probe, "last_timing", None)
            )
        retrain_report = None
        if self.retrain is not None:
            retrain_report = self.retrain.tick()
        if self.metrics is not None:
            self.metrics.counter("control_loop_ticks_total").inc()
            if restarted:
                self.metrics.counter("control_loop_worker_restarts_total").inc(len(restarted))
        return {
            "restarted": restarted,
            "divergence": None if divergences is None else float(np.mean(divergences)),
            "decision": decision,
            "retrain": retrain_report,
        }

    def run(self, max_ticks: int, sleep: Callable[[float], None] = time.sleep) -> list[dict]:
        """Tick up to ``max_ticks`` times at ``interval_s`` pacing.

        Without a retrain loop, stops early once the autopilot reaches
        a verdict and goes idle (no active canary); with one attached
        the loop keeps ticking — idle is exactly when a retrain may
        start the next canary.  Returns the per-tick reports.
        """
        reports = []
        for _ in range(max_ticks):
            report = self.tick()
            reports.append(report)
            if self.autopilot is not None and self.retrain is None and report["decision"] == "idle":
                break
            sleep(self.interval_s)
        return reports
