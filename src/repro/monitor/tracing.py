"""Sampling span tracer: per-request latency attribution across the stack.

PR 5 made the fleet measurable in aggregate — histograms say *that* p99
went up, but not *where one request's 1.2 ms went*.  This module adds
the missing per-request story: a lightweight distributed tracer whose
spans follow a request through the gateway, the micro-batcher, the
shard fan-out, across the worker pipe, and into the compiled kernel,
then roll back up into the shared
:class:`~repro.monitor.metrics.MetricsRegistry` as per-stage latency
histograms (``trace_stage_seconds{stage=...}``).

Design constraints, in order:

1. **Near-zero cost when off.**  Instrumented code calls
   :func:`stage`, which reads one thread-local attribute and returns a
   shared no-op handle when no trace is active — no allocation, no
   lock, no clock read.  The compiled-kernel hot path inlines the same
   guard (one ``getattr`` + ``is None``) so the gated
   ``kernel_speedup`` benchmark is unaffected.
2. **Head-based sampling, deterministic.**  One in ``1/sample_rate``
   root requests records a trace (a modular counter, not an RNG, so
   tests and reruns are exact; the *first* request always samples, so
   a run of any length exports at least one trace).
3. **Tail capture ("flight recorder").**  With ``slow_trace_s`` set,
   *every* request buffers spans provisionally; at root close the
   buffer commits if the request was slow, or is discarded — the traces
   you most want are the ones head sampling is least likely to catch.
4. **Bounded memory.**  Committed traces live in a ring
   (``max_traces``); a runaway trace stops buffering at
   ``max_spans_per_trace`` (drops are counted, never silent).

Context propagation is explicit.  A :class:`TraceContext` names
``(tracer, trace_id, parent span_id)``; it travels in function
arguments (``Request.trace``), thread-locally via :func:`activate` /
span handles (executor threads, the batcher's flush), and across the
worker process boundary as a compact ``[trace_id, span_id, flags]``
triple in the v2 wire frame's meta block
(:data:`repro.serve.wire.TRACE_META_KEY`).  Child processes record
spans against the propagated ids and ship them back in the reply meta
(:meth:`SpanTracer.drain` → :meth:`SpanTracer.absorb`); both sides
stamp ``time.monotonic``, which is machine-wide ``CLOCK_MONOTONIC`` on
Linux, so cross-process spans align on one timeline.

Readout: :meth:`SpanTracer.trace_trees` (nested JSON span trees, the
``/traces`` endpoint), :meth:`SpanTracer.to_chrome` (Chrome
trace-event JSON — load the export in ``chrome://tracing`` or
Perfetto), and the commit-time histogram rollup (the ``/metrics``
endpoint).  This module is stdlib-only and imports nothing from the
rest of the package, so any layer — including :mod:`repro.core` — may
import it without cycles.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import threading
import time
from collections import deque
from typing import Callable

__all__ = [
    "Span",
    "SpanTracer",
    "TraceContext",
    "TRACE_STATE",
    "activate",
    "current_context",
    "stage",
]

# Ambient trace context for the calling thread (attribute ``ctx``).
# Instrumented hot paths read it with one ``getattr(TRACE_STATE, "ctx",
# None)`` — absence of a context IS the off switch.
TRACE_STATE = threading.local()


def current_context() -> TraceContext | None:
    """The calling thread's active trace context, if any."""
    return getattr(TRACE_STATE, "ctx", None)


@dataclasses.dataclass(frozen=True, slots=True)
class TraceContext:
    """A recording position in one trace: ``(tracer, trace, parent span)``.

    A context only exists while its trace is recording (head-sampled or
    provisionally buffered for slow-capture); code therefore never
    checks a "recording?" flag — it checks for the context itself.
    """

    tracer: SpanTracer
    trace_id: int
    span_id: int
    sampled: bool  # head-sampled (commit unconditionally) vs slow-capture provisional

    def to_wire(self) -> list[int]:
        """Compact wire form: ``[trace_id, span_id, flags]`` (JSON-safe)."""
        return [self.trace_id, self.span_id, 1 if self.sampled else 0]


@dataclasses.dataclass(slots=True)
class Span:
    """One closed span: a named, timed stage of one traced request."""

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    end_s: float
    service: str
    pid: int
    attrs: dict

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        """JSON-safe form (the reply-meta and ``/traces`` format)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "service": self.service,
            "pid": self.pid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, record: dict) -> Span:
        return cls(
            trace_id=int(record["trace_id"]),
            span_id=int(record["span_id"]),
            parent_id=None if record.get("parent_id") is None else int(record["parent_id"]),
            name=str(record["name"]),
            start_s=float(record["start_s"]),
            end_s=float(record["end_s"]),
            service=str(record.get("service", "")),
            pid=int(record.get("pid", 0)),
            attrs=dict(record.get("attrs") or {}),
        )


class _NoopHandle:
    """Shared do-nothing stand-in for a span handle (tracing inactive).

    ``__enter__`` returns ``None`` so ``with stage(...) as h:`` yields a
    handle exactly when a trace is recording — the idiom for optional
    extra work (attaching wire context, absorbing reply spans).
    """

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False

    def finish(self, **attrs) -> None:
        pass


_NOOP = _NoopHandle()


class _SpanHandle:
    """An open span: context manager that activates its child context.

    Entering installs :attr:`ctx` thread-locally (so nested
    :func:`stage` calls parent under this span) and restores the
    previous context on exit; :meth:`finish` closes the span exactly
    once.  Root handles may skip activation entirely — the async
    gateway opens a root, threads ``handle.ctx`` through the batcher,
    and calls ``finish`` when the completion resolves.
    """

    __slots__ = ("ctx", "name", "attrs", "_parent_id", "_root", "_start_s", "_prev", "_done")

    def __init__(self, ctx: TraceContext, parent_id: int | None, name: str, attrs: dict, root: bool):
        self.ctx = ctx
        self.name = name
        self.attrs = attrs
        self._parent_id = parent_id
        self._root = root
        self._start_s = ctx.tracer.clock()
        self._prev = None
        self._done = False

    def __enter__(self) -> _SpanHandle:
        self._prev = getattr(TRACE_STATE, "ctx", None)
        TRACE_STATE.ctx = self.ctx
        return self

    def __exit__(self, exc_type, exc, tb):
        TRACE_STATE.ctx = self._prev
        if exc_type is not None:
            self.finish(error=exc_type.__name__)
        else:
            self.finish()
        return False

    def finish(self, **attrs) -> None:
        """Close the span (idempotent); extra attrs are merged in."""
        if self._done:
            return
        self._done = True
        if attrs:
            self.attrs.update(attrs)
        self.ctx.tracer._close(self)


class _Activation:
    """Install an existing context thread-locally without opening a span.

    For carrying a trace across thread hops (gateway executor thunks,
    the worker child's compute stage): downstream :func:`stage` calls
    then parent under ``ctx``'s span.  ``activate(None)`` is a no-op,
    so call sites need no branching.
    """

    __slots__ = ("ctx", "_prev", "_installed")

    def __init__(self, ctx: TraceContext | None):
        self.ctx = ctx
        self._prev = None
        self._installed = False

    def __enter__(self) -> TraceContext | None:
        if self.ctx is not None:
            self._prev = getattr(TRACE_STATE, "ctx", None)
            TRACE_STATE.ctx = self.ctx
            self._installed = True
        return self.ctx

    def __exit__(self, *exc):
        if self._installed:
            TRACE_STATE.ctx = self._prev
        return False


def activate(ctx: TraceContext | None) -> _Activation:
    """Context manager installing ``ctx`` as the thread's trace context."""
    return _Activation(ctx)


def stage(name: str, **attrs):
    """Open a child span under the thread's active context, or do nothing.

    The universal instrumentation point: ``with stage("engine.estimate",
    model=key):``.  When no trace is recording on this thread the call
    returns a shared no-op handle — one thread-local read, no
    allocation — so instrumented code pays ~nothing in the common case.
    """
    ctx = getattr(TRACE_STATE, "ctx", None)
    if ctx is None:
        return _NOOP
    return ctx.tracer.span(ctx, name, **attrs)


class SpanTracer:
    """Bounded-memory span store with head sampling and slow-tail capture.

    Parameters
    ----------
    sample_rate:
        Fraction of root requests that record a trace.  ``>= 1``
        records everything; ``<= 0`` disables head sampling (useful
        with ``slow_trace_s`` alone).  Sampling is a deterministic
        modular counter seeded so the **first** request records.
    slow_trace_s:
        When set, every root request buffers spans provisionally and
        commits only if its total duration reaches this threshold —
        tail capture for the requests head sampling misses.
    max_traces:
        Ring size for committed traces (oldest evicted first).
    max_spans_per_trace:
        Per-trace span budget; spans beyond it are dropped and counted
        in :meth:`counts` (``spans_dropped``), never silently.
    metrics:
        Optional :class:`~repro.monitor.metrics.MetricsRegistry`.  At
        commit every span rolls into
        ``trace_stage_seconds{stage=<span name>}`` and the trace into
        ``trace_traces_total{sampled=head|slow}`` — per-stage latency
        attribution on the same scrape surface as everything else.
    service:
        Stamped on spans this tracer records (``gateway``, ``worker``).
    clock:
        Monotonic time source.  Defaults to :func:`time.monotonic`
        (machine-wide ``CLOCK_MONOTONIC`` on Linux, so parent- and
        child-process spans share a timeline).
    """

    def __init__(
        self,
        sample_rate: float = 0.01,
        slow_trace_s: float | None = None,
        max_traces: int = 256,
        max_spans_per_trace: int = 512,
        metrics=None,
        service: str = "serve",
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_traces < 1:
            raise ValueError("max_traces must be at least 1")
        if max_spans_per_trace < 2:
            raise ValueError("max_spans_per_trace must be at least 2")
        self.sample_rate = float(sample_rate)
        self.slow_trace_s = slow_trace_s
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self.metrics = metrics
        self.service = service
        self.clock = clock
        self._period = 0 if sample_rate <= 0 else max(1, round(1.0 / sample_rate)) if sample_rate < 1 else 1
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._started = 0
        self._sampled = 0
        self._committed = 0
        self._discarded = 0
        self._spans_dropped = 0
        # open traces: trace_id -> buffered spans (closed so far)
        self._live: dict[int, list[Span]] = {}
        # committed traces, oldest first
        self._traces: deque[dict] = deque(maxlen=max_traces)

    # -- span creation --------------------------------------------------
    def _next_id(self) -> int:
        """Span/trace ids unique across cooperating processes.

        ``(pid << 32) | counter`` — two processes of one serving
        topology can never mint the same id, so absorbed child spans
        cannot collide with parent spans in one tree.
        """
        return (os.getpid() << 32) | (next(self._ids) & 0xFFFFFFFF)

    def start_trace(self, name: str, **attrs) -> _SpanHandle | None:
        """Open a root span, or return ``None`` when this request records nothing.

        The sampling decision point: heads-sampled requests commit at
        root close unconditionally; with ``slow_trace_s`` set, unsampled
        requests still buffer provisionally and commit only if slow.
        """
        with self._lock:
            n = self._started
            self._started += 1
        sampled = self._period > 0 and n % self._period == 0
        if not sampled and self.slow_trace_s is None:
            return None
        if sampled:
            with self._lock:
                self._sampled += 1
        trace_id = self._next_id()
        ctx = TraceContext(self, trace_id, self._next_id(), sampled)
        with self._lock:
            self._live[trace_id] = []
        return _SpanHandle(ctx, parent_id=None, name=name, attrs=attrs, root=True)

    def trace(self, name: str, **attrs):
        """Root-span-or-noop convenience: ``with tracer.trace("run"): ...``."""
        handle = self.start_trace(name, **attrs)
        return _NOOP if handle is None else handle

    def span(self, ctx: TraceContext, name: str, **attrs) -> _SpanHandle:
        """Open a child span under an explicit parent context."""
        child = TraceContext(self, ctx.trace_id, self._next_id(), ctx.sampled)
        return _SpanHandle(child, parent_id=ctx.span_id, name=name, attrs=attrs, root=False)

    def record(self, ctx: TraceContext, name: str, start_s: float, end_s: float, **attrs) -> None:
        """Append an already-timed span under ``ctx`` (queue waits, worker stages)."""
        self._append(
            Span(
                trace_id=ctx.trace_id,
                span_id=self._next_id(),
                parent_id=ctx.span_id,
                name=name,
                start_s=start_s,
                end_s=end_s,
                service=self.service,
                pid=os.getpid(),
                attrs=attrs,
            )
        )

    # -- cross-process propagation --------------------------------------
    def from_wire(self, tc) -> TraceContext:
        """Rebuild a context from its wire triple and open a local buffer.

        The worker-child entry point: spans recorded under the returned
        context accumulate until :meth:`drain` ships them back in the
        reply meta.
        """
        trace_id, span_id, flags = int(tc[0]), int(tc[1]), int(tc[2])
        with self._lock:
            self._live.setdefault(trace_id, [])
        return TraceContext(self, trace_id, span_id, bool(flags & 1))

    def drain(self, trace_id: int) -> list[dict]:
        """Remove and return one live trace's spans as JSON-safe dicts."""
        with self._lock:
            spans = self._live.pop(trace_id, [])
        return [span.to_dict() for span in spans]

    def absorb(self, span_dicts) -> None:
        """Merge spans recorded by another process into their live traces.

        The parent-side half of wire propagation: reply-meta span dicts
        re-join the trace they belong to (dropped if it already closed
        — a reply that outlived its root carries no tree to join).
        """
        for record in span_dicts or ():
            self._append(Span.from_dict(record))

    # -- internals ------------------------------------------------------
    def _append(self, span: Span) -> None:
        with self._lock:
            buffer = self._live.get(span.trace_id)
            if buffer is None:
                return
            if len(buffer) >= self.max_spans_per_trace:
                self._spans_dropped += 1
                return
            buffer.append(span)

    def _close(self, handle: _SpanHandle) -> None:
        ctx = handle.ctx
        span = Span(
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=handle._parent_id,
            name=handle.name,
            start_s=handle._start_s,
            end_s=self.clock(),
            service=self.service,
            pid=os.getpid(),
            attrs=handle.attrs,
        )
        self._append(span)
        if handle._root:
            self._finalize(span, ctx.sampled)

    def _finalize(self, root: Span, sampled: bool) -> None:
        """Root closed: commit (and roll up) or discard the buffered trace."""
        slow = self.slow_trace_s is not None and root.duration_s >= self.slow_trace_s
        with self._lock:
            spans = self._live.pop(root.trace_id, [])
            if not (sampled or slow):
                self._discarded += 1
                return
            self._committed += 1
            self._traces.append(
                {
                    "trace_id": root.trace_id,
                    "root": root.name,
                    "duration_s": root.duration_s,
                    "sampled": "head" if sampled else "slow",
                    "spans": spans,
                }
            )
        if self.metrics is not None:
            # single rollup site: absorbed child-process spans are in the
            # buffer too, so worker stages land in the same histograms
            for span in spans:
                self.metrics.histogram("trace_stage_seconds", stage=span.name).observe(span.duration_s)
            self.metrics.counter("trace_traces_total", sampled="head" if sampled else "slow").inc()

    # -- readout --------------------------------------------------------
    def counts(self) -> dict:
        """Sampling/commit accounting (JSON-safe)."""
        with self._lock:
            return {
                "started": self._started,
                "sampled": self._sampled,
                "committed": self._committed,
                "discarded": self._discarded,
                "spans_dropped": self._spans_dropped,
                "live": len(self._live),
                "stored": len(self._traces),
            }

    def trace_trees(self, limit: int | None = None) -> list[dict]:
        """Recent committed traces as nested span trees, newest first.

        Each tree node is the span's dict plus ``children``; spans whose
        parent never closed (or was dropped) surface under the trace's
        ``orphans`` list rather than being silently re-parented — a
        connected tree in this output really is connected.
        """
        with self._lock:
            committed = list(self._traces)
        committed.reverse()
        if limit is not None:
            committed = committed[:limit]
        trees = []
        for entry in committed:
            nodes = {span.span_id: {**span.to_dict(), "children": []} for span in entry["spans"]}
            root = None
            orphans = []
            for span in entry["spans"]:
                node = nodes[span.span_id]
                if span.parent_id is None:
                    root = node
                elif span.parent_id in nodes:
                    nodes[span.parent_id]["children"].append(node)
                else:
                    orphans.append(node)
            trees.append(
                {
                    "trace_id": entry["trace_id"],
                    "root_name": entry["root"],
                    "duration_s": entry["duration_s"],
                    "sampled": entry["sampled"],
                    "root": root,
                    "orphans": orphans,
                }
            )
        return trees

    def to_chrome(self, limit: int | None = None) -> dict:
        """Chrome trace-event JSON (``chrome://tracing`` / Perfetto).

        Complete events (``ph="X"``) with microsecond timestamps; each
        trace renders as one thread lane (``tid`` = trace id) and each
        process keeps its real pid, so the worker hop is visible as a
        lane handoff.
        """
        with self._lock:
            committed = list(self._traces)
        if limit is not None:
            committed = committed[-limit:]
        events = []
        for entry in committed:
            for span in entry["spans"]:
                events.append(
                    {
                        "name": span.name,
                        "cat": span.service,
                        "ph": "X",
                        "ts": span.start_s * 1e6,
                        "dur": span.duration_s * 1e6,
                        "pid": span.pid,
                        "tid": entry["trace_id"] & 0xFFFFFFFF,
                        "args": span.attrs,
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}
