"""Streaming drift detection over per-cell residual streams.

The paper's two-branch coupling makes *model-free health signals*
cheap on the serving path: Branch 2's prediction should track the
coulomb-counting integral of Eq. 1, so the per-window residual

.. math::

    r_w = \\bigl| (SoC_{w+1} - SoC_w) - \\tfrac{-I_{avg} N}{3600\\,C} \\bigr|

is exactly the magnitude of the learned correction over pure physics —
the innovation-style indicator EKF practice tracks (Tu et al.) and the
ODE-residual consistency check of the PINN literature (Dang & Wang).
A healthy checkpoint keeps that stream stationary; a drifting one (bad
retrain, sensor fault, aged cell outside the training envelope) shifts
its mean.  This module watches those streams with O(1) state per cell:

- :class:`PageHinkley` — cumulative deviation from the running mean
  with drift allowance ``delta``; alarms when the deviation climbs
  ``threshold`` above its running minimum.  The classic mean-increase
  detector: ignores level, catches sustained shifts.
- :class:`Cusum` — two-sided cumulative sum with slack ``k`` against a
  reference (fixed, or the running mean when ``reference=None``);
  alarms when either side exceeds ``threshold``.
- physics-bounds monitoring (:class:`PhysicsBounds`) — flags served
  SoC outside ``[soc_min, soc_max]`` and SoC rate-of-change above a
  chemistry-derived ceiling (a cell discharging at its maximum C-rate
  moves SoC by ``C_max/3600`` per second; anything faster than
  ``margin`` times that is physically impossible, not drift).

:class:`DriftMonitor` is the fleet-facing object: detectors live in
flat numpy arrays indexed by a per-cell slot (:meth:`DriftMonitor.track`),
so a rollout window updates every active cell's detector in a handful
of vectorized ops, and alarms materialize as typed :class:`DriftEvent`
records in a bounded ring buffer (``collections.deque(maxlen=...)``),
with per-kind counters in an attached
:class:`~repro.monitor.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Iterable, Sequence

import numpy as np

from .metrics import MetricsRegistry
from .tracing import TRACE_STATE

__all__ = [
    "ChemistryDriftRouter",
    "Cusum",
    "CusumConfig",
    "DriftEvent",
    "DriftMonitor",
    "PageHinkley",
    "PageHinkleyConfig",
    "PhysicsBounds",
    "iter_kinds",
    "residual_stream",
]


@dataclasses.dataclass(frozen=True)
class DriftEvent:
    """One detector alarm.

    Attributes
    ----------
    kind:
        ``"page_hinkley"`` / ``"cusum"`` (residual drift),
        ``"soc_bounds"`` / ``"soc_rate"`` (physics violations).
    cell_id:
        Cell whose stream alarmed.
    value:
        The statistic that crossed (cumulative deviation, SoC, rate).
    threshold:
        The limit it crossed.
    window:
        Rollout window index when available (``None`` for request-path
        observations).
    detail:
        Human-readable context.
    trace_ids:
        Exemplar trace ids: when the alarm fired inside a traced
        request (an active :mod:`~repro.monitor.tracing` context on the
        emitting thread), the ids link this event to the span trees
        that produced it — the drift dashboard's "show me the request".
    """

    kind: str
    cell_id: str
    value: float
    threshold: float
    window: int | None = None
    detail: str = ""
    trace_ids: tuple = ()


@dataclasses.dataclass(frozen=True)
class PageHinkleyConfig:
    """Page–Hinkley parameters.

    ``delta`` is the tolerated per-sample drift (magnitude changes
    smaller than this never alarm); ``threshold`` the cumulative
    deviation budget; ``min_samples`` suppresses alarms while the
    running mean is still warming up.
    """

    delta: float = 0.005
    threshold: float = 0.1
    min_samples: int = 10


@dataclasses.dataclass(frozen=True)
class CusumConfig:
    """Two-sided CUSUM parameters.

    ``slack`` is the half-width of the in-control band around the
    reference; ``reference=None`` tracks the running mean (sustained
    *shifts* alarm, steady offsets do not), a float pins a fixed
    target (the deterministic-test configuration).
    """

    slack: float = 0.005
    threshold: float = 0.1
    min_samples: int = 10
    reference: float | None = None


@dataclasses.dataclass(frozen=True)
class PhysicsBounds:
    """Physical plausibility limits for served SoC.

    ``max_rate_per_s`` defaults to a 10C-equivalent ceiling with a
    1.5x margin; use :meth:`for_c_rate` to derive it from a fleet's
    actual maximum discharge C-rate.
    """

    soc_min: float = -0.05
    soc_max: float = 1.05
    max_rate_per_s: float = 1.5 * 10.0 / 3600.0

    @classmethod
    def for_c_rate(
        cls,
        max_discharge_c: float,
        margin: float = 1.5,
        soc_min: float = -0.05,
        soc_max: float = 1.05,
    ) -> PhysicsBounds:
        """Bounds whose rate ceiling comes from a chemistry's max C-rate."""
        return cls(soc_min=soc_min, soc_max=soc_max, max_rate_per_s=margin * max_discharge_c / 3600.0)


class PageHinkley:
    """Scalar Page–Hinkley detector (the single-stream reference form).

    :meth:`update` returns ``True`` on alarm and resets the detector so
    it can re-arm on the post-change regime.  The vectorized bank in
    :class:`DriftMonitor` computes the identical recurrence; the test
    suite pins them sample-for-sample.
    """

    def __init__(self, config: PageHinkleyConfig | None = None, **kwargs):
        self.config = config if config is not None else PageHinkleyConfig(**kwargs)
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m = 0.0
        self.m_min = 0.0

    def update(self, x: float) -> bool:
        """Fold one observation in; ``True`` when the stream alarmed."""
        cfg = self.config
        self.n += 1
        self.mean += (x - self.mean) / self.n
        self.m += x - self.mean - cfg.delta
        if self.m < self.m_min:
            self.m_min = self.m
        if self.n >= cfg.min_samples and self.m - self.m_min > cfg.threshold:
            self.reset()
            return True
        return False


class Cusum:
    """Scalar two-sided CUSUM detector.

    With ``reference=None`` the target is the running mean, so the
    detector is self-calibrating: a steady residual level is in
    control, a sustained shift alarms.  A fixed reference makes the
    trigger point exactly computable (see the deterministic tests).
    """

    def __init__(self, config: CusumConfig | None = None, **kwargs):
        self.config = config if config is not None else CusumConfig(**kwargs)
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.pos = 0.0
        self.neg = 0.0

    def update(self, x: float) -> bool:
        """Fold one observation in; ``True`` when either side alarmed."""
        cfg = self.config
        self.n += 1
        self.mean += (x - self.mean) / self.n
        ref = cfg.reference if cfg.reference is not None else self.mean
        self.pos = max(0.0, self.pos + x - ref - cfg.slack)
        self.neg = max(0.0, self.neg + ref - x - cfg.slack)
        if self.n >= cfg.min_samples and (self.pos > cfg.threshold or self.neg > cfg.threshold):
            self.reset()
            return True
        return False


class _DetectorBank:
    """Flat per-cell detector state, grown geometrically with the fleet."""

    _FIELDS: tuple[str, ...] = ()

    def __init__(self):
        self._capacity = 0
        for field in self._FIELDS:
            setattr(self, field, np.empty(0))

    def ensure(self, n: int) -> None:
        if n <= self._capacity:
            return
        capacity = max(n, 2 * self._capacity, 64)
        for field in self._FIELDS:
            old = getattr(self, field)
            grown = np.zeros(capacity)
            grown[: len(old)] = old
            setattr(self, field, grown)
        self._capacity = capacity


class _PageHinkleyBank(_DetectorBank):
    """Vectorized Page–Hinkley over many cells (same math as the scalar)."""

    _FIELDS = ("n", "mean", "m", "m_min")

    def __init__(self, config: PageHinkleyConfig):
        super().__init__()
        self.config = config

    def update(self, idx: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Advance the streams at ``idx`` by ``x``; boolean alarms per row."""
        cfg = self.config
        n = self.n[idx] + 1.0
        mean = self.mean[idx] + (x - self.mean[idx]) / n
        m = self.m[idx] + x - mean - cfg.delta
        m_min = np.minimum(self.m_min[idx], m)
        triggered = (n >= cfg.min_samples) & (m - m_min > cfg.threshold)
        if triggered.any():
            reset = idx[triggered]
            n[triggered] = 0.0
            mean[triggered] = 0.0
            m[triggered] = 0.0
            m_min[triggered] = 0.0
            self.n[reset] = 0.0  # keep the bank consistent if idx repeats
        self.n[idx] = n
        self.mean[idx] = mean
        self.m[idx] = m
        self.m_min[idx] = m_min
        return triggered


class _CusumBank(_DetectorBank):
    """Vectorized two-sided CUSUM over many cells."""

    _FIELDS = ("n", "mean", "pos", "neg")

    def __init__(self, config: CusumConfig):
        super().__init__()
        self.config = config

    def update(self, idx: np.ndarray, x: np.ndarray) -> np.ndarray:
        cfg = self.config
        n = self.n[idx] + 1.0
        mean = self.mean[idx] + (x - self.mean[idx]) / n
        ref = cfg.reference if cfg.reference is not None else mean
        pos = np.maximum(0.0, self.pos[idx] + x - ref - cfg.slack)
        neg = np.maximum(0.0, self.neg[idx] + ref - x - cfg.slack)
        triggered = (n >= cfg.min_samples) & ((pos > cfg.threshold) | (neg > cfg.threshold))
        if triggered.any():
            n[triggered] = 0.0
            mean[triggered] = 0.0
            pos[triggered] = 0.0
            neg[triggered] = 0.0
        self.n[idx] = n
        self.mean[idx] = mean
        self.pos[idx] = pos
        self.neg[idx] = neg
        return triggered


class DriftMonitor:
    """Fleet-wide drift and physics-bounds watcher.

    Parameters
    ----------
    page_hinkley, cusum:
        Residual-stream detector configs (``None`` disables one).
    bounds:
        Physics-plausibility limits (``None`` disables the check).
    max_events:
        Ring-buffer depth; older events fall off the back.
    metrics:
        Optional registry receiving ``drift_events_total{kind=...}``
        counters and a ``drift_tracked_cells`` gauge.

    The hot-path contract: :meth:`observe_soc` costs a couple of
    vectorized comparisons when nothing is wrong (no per-cell Python
    work unless a violation actually fires), and
    :meth:`observe_residuals` is a fixed number of numpy ops over the
    active batch regardless of fleet size.
    """

    def __init__(
        self,
        page_hinkley: PageHinkleyConfig | None = PageHinkleyConfig(),
        cusum: CusumConfig | None = CusumConfig(),
        bounds: PhysicsBounds | None = PhysicsBounds(),
        max_events: int = 1024,
        metrics: MetricsRegistry | None = None,
    ):
        self.bounds = bounds
        self.metrics = metrics
        self._ph = None if page_hinkley is None else _PageHinkleyBank(page_hinkley)
        self._cusum = None if cusum is None else _CusumBank(cusum)
        self._events: collections.deque[DriftEvent] = collections.deque(maxlen=max_events)
        self._index: dict[str, int] = {}
        self._ids: list[str] = []
        self._kind_counts: dict[str, int] = {}
        self.events_total = 0

    @classmethod
    def from_spec(
        cls,
        spec: dict | None,
        metrics: MetricsRegistry | None = None,
        max_events: int = 1024,
    ) -> DriftMonitor:
        """Build a monitor from a plain-dict config (registry metadata).

        The spec is the JSON-safe shape stored under the ``"drift"``
        key of a checkpoint's registry metadata (see
        :func:`repro.serve.driftconfig.drift_resolver_from_registry`)::

            {"page_hinkley": {"delta": 0.01, "threshold": 0.2},
             "cusum": null,                       # null disables a detector
             "bounds": {"max_discharge_c": 3.0}}  # or soc_min/soc_max/max_rate_per_s

        Missing keys take the detector defaults; an explicit ``None``
        disables that detector.  ``bounds`` accepts either the raw
        :class:`PhysicsBounds` fields or ``max_discharge_c`` (plus
        optional ``margin``/``soc_min``/``soc_max``), which routes
        through :meth:`PhysicsBounds.for_c_rate`.
        """
        spec = dict(spec or {})
        ph = spec.get("page_hinkley", {})
        cs = spec.get("cusum", {})
        b = spec.get("bounds", {})
        if b is None:
            bounds = None
        else:
            b = dict(b)
            if "max_discharge_c" in b:
                bounds = PhysicsBounds.for_c_rate(float(b.pop("max_discharge_c")), **b)
            else:
                bounds = PhysicsBounds(**b)
        return cls(
            page_hinkley=None if ph is None else PageHinkleyConfig(**ph),
            cusum=None if cs is None else CusumConfig(**cs),
            bounds=bounds,
            max_events=int(spec.get("max_events", max_events)),
            metrics=metrics,
        )

    # -- membership ------------------------------------------------------
    def track(self, cell_ids: Sequence[str]) -> np.ndarray:
        """Slot indices for ``cell_ids``, registering new cells as needed.

        The returned array is what :meth:`observe_residuals` consumes —
        resolve it once per batch/model-group, not per window.
        """
        index = self._index
        missing = [cid for cid in cell_ids if cid not in index]
        for cid in missing:
            index[cid] = len(self._ids)
            self._ids.append(cid)
        if missing:
            n = len(self._ids)
            if self._ph is not None:
                self._ph.ensure(n)
            if self._cusum is not None:
                self._cusum.ensure(n)
            if self.metrics is not None:
                self.metrics.gauge("drift_tracked_cells").set(n)
        return np.fromiter((index[cid] for cid in cell_ids), dtype=np.intp, count=len(cell_ids))

    @property
    def n_tracked(self) -> int:
        return len(self._ids)

    # -- observation -----------------------------------------------------
    def observe_residuals(self, indices: np.ndarray, residuals: np.ndarray, window: int | None = None) -> int:
        """Advance the residual-stream detectors; returns events emitted."""
        emitted = 0
        if self._ph is not None:
            triggered = self._ph.update(indices, residuals)
            emitted += self._emit_triggers(
                "page_hinkley", indices, residuals, triggered, self._ph.config.threshold, window
            )
        if self._cusum is not None:
            triggered = self._cusum.update(indices, residuals)
            emitted += self._emit_triggers(
                "cusum", indices, residuals, triggered, self._cusum.config.threshold, window
            )
        return emitted

    def observe_soc(
        self,
        cell_ids: Sequence[str],
        soc: np.ndarray,
        delta: np.ndarray | None = None,
        horizon_s: np.ndarray | float | None = None,
        window: int | None = None,
        positions: np.ndarray | None = None,
    ) -> int:
        """Physics-bounds check on a batch of served SoC values.

        ``delta``/``horizon_s`` (predicted SoC change and the step it
        happened over) enable the rate-of-change check.  ``positions``
        maps batch rows back into ``cell_ids`` (for callers whose batch
        is a fancy-indexed subset, like the engine's rollout loop) —
        row ``k`` names ``cell_ids[positions[k]]``.  The clean-path
        cost is two vectorized comparisons and an ``any()``; no
        per-cell Python work happens unless a violation fires.
        """
        bounds = self.bounds
        if bounds is None:
            return 0
        emitted = 0
        # clean-path fast check: two scalar reductions beat three
        # elementwise ops + any() at request-path batch sizes, and the
        # mask is only ever materialized once a violation exists
        if soc.min() < bounds.soc_min or soc.max() > bounds.soc_max:
            bad = (soc < bounds.soc_min) | (soc > bounds.soc_max)
            for k in np.flatnonzero(bad):
                cid = cell_ids[int(positions[k])] if positions is not None else cell_ids[k]
                emitted += self._emit(
                    DriftEvent(
                        kind="soc_bounds",
                        cell_id=cid,
                        value=float(soc[k]),
                        threshold=bounds.soc_max if soc[k] > bounds.soc_max else bounds.soc_min,
                        window=window,
                        detail=f"SoC outside [{bounds.soc_min:g}, {bounds.soc_max:g}]",
                    )
                )
        if delta is not None and horizon_s is not None:
            rate = np.abs(delta) / np.maximum(np.asarray(horizon_s, dtype=np.float64), 1e-9)
            fast = rate > bounds.max_rate_per_s
            if fast.any():
                for k in np.flatnonzero(fast):
                    cid = cell_ids[int(positions[k])] if positions is not None else cell_ids[k]
                    emitted += self._emit(
                        DriftEvent(
                            kind="soc_rate",
                            cell_id=cid,
                            value=float(rate[k]),
                            threshold=bounds.max_rate_per_s,
                            window=window,
                            detail="SoC rate above the chemistry ceiling",
                        )
                    )
        return emitted

    # -- readout ---------------------------------------------------------
    def events(self) -> list[DriftEvent]:
        """Ring-buffer contents, oldest first."""
        return list(self._events)

    def event_counts(self) -> dict[str, int]:
        """Events *ever* emitted, by kind (not capped by the ring)."""
        return dict(self._kind_counts)

    def clear(self) -> None:
        """Drop buffered events (detector state and counters stay)."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    # ----------------------------------------------------------------
    def _emit_triggers(
        self,
        kind: str,
        indices: np.ndarray,
        values: np.ndarray,
        triggered: np.ndarray,
        threshold: float,
        window: int | None,
    ) -> int:
        if not triggered.any():
            return 0
        emitted = 0
        for k in np.flatnonzero(triggered):
            emitted += self._emit(
                DriftEvent(
                    kind=kind,
                    cell_id=self._ids[int(indices[k])],
                    value=float(values[k]),
                    threshold=threshold,
                    window=window,
                    detail=f"{kind} alarm on the physics-residual stream",
                )
            )
        return emitted

    def _emit(self, event: DriftEvent) -> int:
        # exemplar: when the alarm fires inside a traced request, pin the
        # trace id to the event so it links back to the span tree
        ctx = getattr(TRACE_STATE, "ctx", None)
        if ctx is not None and not event.trace_ids:
            event = dataclasses.replace(event, trace_ids=(ctx.trace_id,))
        self._events.append(event)
        self.events_total += 1
        self._kind_counts[event.kind] = self._kind_counts.get(event.kind, 0) + 1
        if self.metrics is not None:
            self.metrics.counter("drift_events_total", kind=event.kind).inc()
        return 1


class ChemistryDriftRouter:
    """Per-chemistry drift monitoring behind the one-monitor interface.

    A mixed fleet should not share one detector tuning: an LFP pack's
    flat OCV curve earns looser residual thresholds than an NMC pack,
    and their discharge ceilings differ.  The router keeps one
    :class:`DriftMonitor` per chemistry, built lazily from
    ``resolver(chemistry)``, and splits every vectorized observation
    across them — so :class:`~repro.serve.engine.FleetEngine` (and the
    workers behind it) keep calling the exact single-monitor surface
    (``track`` / ``observe_soc`` / ``observe_residuals`` / ``events``).

    Parameters
    ----------
    resolver:
        ``resolver(chemistry) -> dict | DriftMonitor | None``.  A dict
        goes through :meth:`DriftMonitor.from_spec`; ``None`` means
        default configuration; a ready monitor is adopted as-is.
        ``chemistry`` is the cell's tag (``None`` for untagged cells).
    metrics:
        Shared :class:`~repro.monitor.metrics.MetricsRegistry` handed
        to every constructed monitor (``drift_events_total`` counters
        merge across chemistries, as one monitor would report).
    max_events:
        Per-chemistry ring depth for constructed monitors.

    While only one chemistry has appeared the router forwards straight
    through (global and per-monitor slots coincide), so a uniform fleet
    pays one extra attribute hop, not a regrouping pass.
    """

    def __init__(self, resolver, metrics: MetricsRegistry | None = None, max_events: int = 1024):
        self.resolver = resolver
        self.metrics = metrics
        self.max_events = max_events
        self._monitors: list[DriftMonitor] = []
        self._by_chem: dict[str | None, int] = {}
        self._cell_mon: dict[str, int] = {}
        # global slot -> (monitor id, local slot in that monitor)
        self._index: dict[str, int] = {}
        self._ids: list[str] = []
        self._slot_mon: list[int] = []
        self._slot_local: list[int] = []
        self._bounds_cache: tuple[int, PhysicsBounds | None] | None = None

    # -- membership ------------------------------------------------------
    def resolve_cell(self, cell_id: str, chemistry: str | None) -> DriftMonitor:
        """Bind ``cell_id`` to its chemistry's monitor (idempotent).

        The engine calls this from ``register_cell`` (and state
        adoption), so by the time observations arrive every cell routes
        to the right detector bank.  Cells observed without a prior
        binding fall back to the ``None``-chemistry monitor.
        """
        mid = self._monitor_id(chemistry)
        self._cell_mon[cell_id] = mid
        return self._monitors[mid]

    def monitor_for(self, chemistry: str | None) -> DriftMonitor:
        """The (lazily built) monitor serving one chemistry."""
        return self._monitors[self._monitor_id(chemistry)]

    def monitors(self) -> dict[str | None, DriftMonitor]:
        """All built monitors, keyed by chemistry."""
        return {chem: self._monitors[mid] for chem, mid in self._by_chem.items()}

    def track(self, cell_ids: Sequence[str]) -> np.ndarray:
        """Global slot indices (see :meth:`DriftMonitor.track`)."""
        index = self._index
        for cid in cell_ids:
            if cid in index:
                continue
            mid = self._mid_of(cid)
            local = int(self._monitors[mid].track([cid])[0])
            index[cid] = len(self._ids)
            self._ids.append(cid)
            self._slot_mon.append(mid)
            self._slot_local.append(local)
        return np.fromiter((index[cid] for cid in cell_ids), dtype=np.intp, count=len(cell_ids))

    @property
    def n_tracked(self) -> int:
        return len(self._ids)

    # -- observation -----------------------------------------------------
    def observe_residuals(
        self, indices: np.ndarray, residuals: np.ndarray, window: int | None = None
    ) -> int:
        """Split the batch per chemistry monitor; returns events emitted."""
        if len(self._monitors) == 1:
            # single chemistry so far: global slots == the monitor's own
            return self._monitors[0].observe_residuals(indices, residuals, window=window)
        mons = np.fromiter(
            (self._slot_mon[int(i)] for i in indices), dtype=np.intp, count=len(indices)
        )
        emitted = 0
        for mid in np.unique(mons):
            rows = np.flatnonzero(mons == mid)
            local = np.fromiter(
                (self._slot_local[int(indices[r])] for r in rows), dtype=np.intp, count=len(rows)
            )
            emitted += self._monitors[mid].observe_residuals(
                local, residuals[rows], window=window
            )
        return emitted

    def observe_soc(
        self,
        cell_ids: Sequence[str],
        soc: np.ndarray,
        delta: np.ndarray | None = None,
        horizon_s: np.ndarray | float | None = None,
        window: int | None = None,
        positions: np.ndarray | None = None,
    ) -> int:
        """Bounds check per chemistry monitor (see :meth:`DriftMonitor.observe_soc`)."""
        if not self._monitors:
            self._monitor_id(None)
        if len(self._monitors) == 1:
            return self._monitors[0].observe_soc(
                cell_ids, soc, delta=delta, horizon_s=horizon_s, window=window, positions=positions
            )
        n = len(soc)
        mons = np.fromiter(
            (
                self._mid_of(cell_ids[int(positions[k])] if positions is not None else cell_ids[k])
                for k in range(n)
            ),
            dtype=np.intp,
            count=n,
        )
        h_arr = None
        if horizon_s is not None and np.ndim(horizon_s) != 0:
            h_arr = np.asarray(horizon_s, dtype=np.float64)
        emitted = 0
        for mid in np.unique(mons):
            rows = np.flatnonzero(mons == mid)
            emitted += self._monitors[mid].observe_soc(
                cell_ids,
                soc[rows],
                delta=None if delta is None else delta[rows],
                horizon_s=horizon_s if h_arr is None else h_arr[rows],
                window=window,
                positions=rows if positions is None else positions[rows],
            )
        return emitted

    # -- readout ---------------------------------------------------------
    @property
    def bounds(self) -> PhysicsBounds | None:
        """Tightest envelope over the built monitors' bounds.

        The engine's scalar fast-path guard *skips* the monitor when a
        batch sits inside these limits, so the envelope must be at
        least as strict as every per-chemistry monitor — a SoC that
        violates its own chemistry's bounds always violates the
        envelope too.  In-envelope batches from chemistries with looser
        limits take the slow path needlessly, which costs a vectorized
        check, never a missed event (the per-monitor check inside
        :meth:`observe_soc` applies each chemistry's own limits).
        """
        cached = self._bounds_cache
        if cached is not None and cached[0] == len(self._monitors):
            return cached[1]
        per = [m.bounds for m in self._monitors if m.bounds is not None]
        if not per:
            envelope = PhysicsBounds() if not self._monitors else None
        else:
            envelope = PhysicsBounds(
                soc_min=max(b.soc_min for b in per),
                soc_max=min(b.soc_max for b in per),
                max_rate_per_s=min(b.max_rate_per_s for b in per),
            )
        self._bounds_cache = (len(self._monitors), envelope)
        return envelope

    def events(self) -> list[DriftEvent]:
        """Every monitor's ring contents (grouped by chemistry, oldest first)."""
        merged: list[DriftEvent] = []
        for monitor in self._monitors:
            merged.extend(monitor.events())
        return merged

    def event_counts(self) -> dict[str, int]:
        """Events ever emitted, by kind, summed across chemistries."""
        counts: dict[str, int] = {}
        for monitor in self._monitors:
            for kind, n in monitor.event_counts().items():
                counts[kind] = counts.get(kind, 0) + n
        return counts

    @property
    def events_total(self) -> int:
        return sum(m.events_total for m in self._monitors)

    def clear(self) -> None:
        for monitor in self._monitors:
            monitor.clear()

    def __len__(self) -> int:
        return sum(len(m) for m in self._monitors)

    # ----------------------------------------------------------------
    def _mid_of(self, cell_id: str) -> int:
        mid = self._cell_mon.get(cell_id)
        if mid is None:
            mid = self._monitor_id(None)
            self._cell_mon[cell_id] = mid
        return mid

    def _monitor_id(self, chemistry: str | None) -> int:
        mid = self._by_chem.get(chemistry)
        if mid is not None:
            return mid
        resolved = self.resolver(chemistry)
        if resolved is None:
            monitor = DriftMonitor(metrics=self.metrics, max_events=self.max_events)
        elif isinstance(resolved, DriftMonitor):
            monitor = resolved
        else:
            monitor = DriftMonitor.from_spec(
                resolved, metrics=self.metrics, max_events=self.max_events
            )
        mid = len(self._monitors)
        self._monitors.append(monitor)
        self._by_chem[chemistry] = mid
        self._bounds_cache = None
        return mid


def residual_stream(
    soc_before: np.ndarray,
    soc_after: np.ndarray,
    i_avg: np.ndarray,
    horizon_s: np.ndarray,
    capacity_ah: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """``|predicted ΔSoC − coulomb-counting ΔSoC|`` for one window batch.

    The reference implementation of the residual the engine computes
    in-place on its preallocated buffers; kept here (and exported) so
    tests and offline analysis share one definition.
    """
    if out is None:
        out = np.empty_like(np.asarray(soc_after, dtype=np.float64))
    np.subtract(soc_after, soc_before, out=out)
    coulomb = -(np.asarray(i_avg) * np.asarray(horizon_s)) / (3600.0 * np.asarray(capacity_ah))
    np.subtract(out, coulomb, out=out)
    np.abs(out, out=out)
    return out


def iter_kinds(events: Iterable[DriftEvent]) -> dict[str, int]:
    """Histogram a list of events by kind (test/reporting helper)."""
    counts: dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts
