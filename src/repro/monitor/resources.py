"""Process resource telemetry: RSS and CPU seconds from ``/proc``.

Capacity planning needs more than latency quantiles — "how many cells
per host" is bounded by memory and CPU as much as by the knee of the
latency curve.  This module reads the two numbers that matter from
``/proc/<pid>/stat`` (one ~300-byte read, no allocation-heavy psutil
dependency) and exports them in the standard Prometheus process-metrics
vocabulary:

- ``process_resident_bytes{pid="..."}`` — gauge, resident set size;
- ``process_cpu_seconds_total{pid="..."}`` — counter, user+system CPU
  time consumed since process start.

The ``pid`` label keeps per-worker series distinct after
:func:`~repro.monitor.metrics.merge_snapshots` (gauges sum across
snapshots, so unlabeled series from eight workers would merge into one
meaningless total — labeled ones survive as eight inspectable series).

:func:`install_process_metrics` wires a :class:`ResourceSampler` into a
registry as a snapshot-time collector, so every existing readout path —
the worker ``metrics`` wire op, ``ShardedFleet.metrics()``, the
``/metrics`` exposition endpoint — sees current values with no caller
changes.  The perf lab additionally runs a background sampling thread
(:meth:`ResourceSampler.start`) to record a resource *time series* per
run, not just the final value.

On platforms without ``/proc`` the reader falls back to
``resource.getrusage`` (coarser RSS units, still correct CPU seconds).
"""

from __future__ import annotations

import os
import resource
import threading
import time
from collections import deque

__all__ = [
    "ResourceSampler",
    "install_process_metrics",
    "read_process_stats",
]

_CLK_TCK = os.sysconf("SC_CLK_TCK") if hasattr(os, "sysconf") else 100
_PAGE_SIZE = resource.getpagesize()


def read_process_stats(pid: int | str = "self") -> dict:
    """RSS bytes and cumulative CPU seconds for one process.

    Parses ``/proc/<pid>/stat``: the comm field may contain spaces and
    parentheses, so fields are split only after the *last* ``)``.
    After that split, utime/stime are fields 11/12 and RSS (pages) is
    field 21 (0-indexed; fields 14/15/24 in proc(5)'s 1-indexed
    numbering).  Falls back to ``getrusage`` when ``/proc`` is absent
    (only valid for the calling process).
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as fh:
            raw = fh.read().decode("ascii", "replace")
        fields = raw[raw.rfind(")") + 2 :].split()
        cpu_seconds = (int(fields[11]) + int(fields[12])) / _CLK_TCK
        rss_bytes = int(fields[21]) * _PAGE_SIZE
        return {"rss_bytes": rss_bytes, "cpu_seconds": cpu_seconds}
    except (OSError, IndexError, ValueError):
        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is kilobytes on Linux (peak, not current — the best
        # available without /proc)
        return {
            "rss_bytes": usage.ru_maxrss * 1024,
            "cpu_seconds": usage.ru_utime + usage.ru_stime,
        }


class ResourceSampler:
    """Samples one process's RSS/CPU into gauges and an in-memory series.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.monitor.metrics.MetricsRegistry`; when
        given, each :meth:`sample` refreshes
        ``process_resident_bytes{pid=}`` and advances
        ``process_cpu_seconds_total{pid=}`` by the (non-negative) CPU
        delta since the previous sample, preserving counter semantics.
    pid:
        Process to read (default: the calling process).
    clock:
        Timestamp source for the recorded series (default
        ``time.monotonic``).

    :meth:`start` runs :meth:`sample` on a daemon thread at a fixed
    interval; samples land in a bounded deque (:attr:`samples`) for
    artifact export via :meth:`series`.
    """

    def __init__(self, metrics=None, pid: int | None = None, clock=time.monotonic, maxlen: int = 4096):
        self.pid = int(pid if pid is not None else os.getpid())
        self.clock = clock
        self.samples: deque[dict] = deque(maxlen=maxlen)
        self._metrics = metrics
        self._last_cpu: float | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        if metrics is not None:
            label = str(self.pid)
            self._rss_gauge = metrics.gauge("process_resident_bytes", pid=label)
            self._cpu_counter = metrics.counter("process_cpu_seconds_total", pid=label)
        else:
            self._rss_gauge = None
            self._cpu_counter = None

    def sample(self) -> dict:
        """Take one reading; update instruments; append to the series."""
        stats = read_process_stats(self.pid)
        record = {"t": self.clock(), **stats}
        if self._rss_gauge is not None:
            self._rss_gauge.set(stats["rss_bytes"])
            prev = self._last_cpu
            if prev is not None and stats["cpu_seconds"] > prev:
                self._cpu_counter.inc(stats["cpu_seconds"] - prev)
            elif prev is None:
                self._cpu_counter.inc(stats["cpu_seconds"])
        self._last_cpu = stats["cpu_seconds"]
        self.samples.append(record)
        return record

    def series(self) -> list[dict]:
        """The recorded samples as a JSON-safe list (oldest first)."""
        return list(self.samples)

    # -- background sampling --------------------------------------------
    def start(self, interval_s: float = 0.25) -> None:
        """Sample on a daemon thread every ``interval_s`` until :meth:`stop`."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.sample()
                except Exception:
                    pass

        self._thread = threading.Thread(target=loop, name="resource-sampler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None

    def __enter__(self) -> "ResourceSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def install_process_metrics(registry) -> ResourceSampler:
    """Attach self-process RSS/CPU series to ``registry`` (idempotent).

    Registers a :class:`ResourceSampler` as a snapshot-time collector so
    ``process_resident_bytes`` / ``process_cpu_seconds_total`` are fresh
    on every readout.  Calling it again on the same registry returns the
    existing sampler — the engine, gateway, and CLI can each install
    defensively without duplicating series updates.
    """
    sampler = getattr(registry, "_process_sampler", None)
    if sampler is not None:
        return sampler
    sampler = ResourceSampler(metrics=registry)
    registry._process_sampler = sampler
    registry.add_collector(sampler.sample)
    return sampler
