"""Lock-cheap metrics primitives: counters, gauges, streaming quantiles.

The serving stack (engine, gateway, shard workers) needs *live*
accounting that costs almost nothing on the hot path and can be read
out as one coherent snapshot — across threads, and across the process
boundary of :class:`~repro.serve.workers.ProcessShardWorker` children.
This module provides the three classic instrument kinds behind a
:class:`MetricsRegistry` of labeled series:

- :class:`Counter` — monotone float, ``inc()``;
- :class:`Gauge` — last-written float, ``set()``;
- :class:`Histogram` — count/sum/min/max plus **streaming quantiles**
  (p50/p95/p99 by default) via the P² algorithm [Jain & Chlamtac,
  CACM 1985]: five markers per target quantile, O(1) memory and O(1)
  update, no samples stored.  The previous gateway accounting kept a
  262k-entry latency reservoir per endpoint; a P² sketch replaces it
  with ~45 floats at ~1% accuracy on smooth distributions (pinned
  against ``numpy.percentile`` in ``tests/test_monitor_metrics.py``).

**Lock discipline.**  Series *creation* takes the registry lock;
*updates* are single attribute mutations on the instrument object,
which CPython's GIL makes safe enough for accounting (a torn read can
at worst momentarily under-report — no state is ever corrupted).
Callers on a hot path should cache the instrument object returned by
:meth:`MetricsRegistry.counter` and friends instead of re-resolving
the label set per call.

**Exposition.**  :meth:`MetricsRegistry.snapshot` returns a plain-JSON
dict (the wire/merge format), :meth:`MetricsRegistry.to_prometheus`
the Prometheus text format.  :func:`merge_snapshots` combines
snapshots from many processes into one fleet view: counters and gauges
sum, histogram counts/sums sum, min/max combine exactly, and quantiles
merge as count-weighted averages (an approximation — the only part of
a merged snapshot that is not exact, and flagged as such in the
monitor README).
"""

from __future__ import annotations

import bisect
import math
import threading

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
    "escape_label_value",
    "merge_snapshots",
    "prometheus_text",
    "series_key",
]

DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


class P2Quantile:
    """One streaming quantile via the P² algorithm (5 markers, O(1) update).

    Parameters
    ----------
    p:
        Target quantile in (0, 1), e.g. ``0.95``.

    The first five observations are stored and sorted (the marker
    seed); from the sixth on, each observation moves the five marker
    heights by at most one parabolic (or linear) adjustment.  Until
    enough samples arrive, :meth:`value` falls back to the empirical
    quantile of what has been seen.
    """

    __slots__ = ("p", "_count", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be within (0, 1), got {p!r}")
        self.p = float(p)
        self._count = 0
        self._q: list[float] = []  # marker heights (sorted seed, then P² markers)
        self._n: list[int] = []  # actual marker positions
        self._np: list[float] = []  # desired marker positions
        self._dn: list[float] = []  # desired-position increments

    def add(self, x: float) -> None:
        """Fold one observation into the sketch."""
        x = float(x)
        self._count += 1
        if self._count <= 5:
            bisect.insort(self._q, x)
            if self._count == 5:
                p = self.p
                self._n = [0, 1, 2, 3, 4]
                self._np = [0.0, 2 * p, 4 * p, 2 + 2 * p, 4.0]
                self._dn = [0.0, p / 2, p, (1 + p) / 2, 1.0]
            return
        q, n = self._q, self._n
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._np[i] += self._dn[i]
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1) or (d <= -1.0 and n[i - 1] - n[i] < -1):
                s = 1 if d >= 1.0 else -1
                candidate = self._parabolic(i, s)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, s)
                q[i] = candidate
                n[i] += s

    def _parabolic(self, i: int, s: int) -> float:
        q, n = self._q, self._n
        return q[i] + s / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + s) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - s) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, s: int) -> float:
        q, n = self._q, self._n
        return q[i] + s * (q[i + s] - q[i]) / (n[i + s] - n[i])

    def value(self) -> float:
        """Current quantile estimate (NaN before the first observation)."""
        if self._count == 0:
            return math.nan
        if self._count <= 5:
            # empirical quantile with linear interpolation (numpy's default)
            pos = self.p * (len(self._q) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(self._q) - 1)
            return self._q[lo] + (pos - lo) * (self._q[hi] - self._q[lo])
        return self._q[2]

    def __len__(self) -> int:
        return self._count


class Counter:
    """Monotone accumulator.  ``inc`` is one attribute add — no lock."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must not be negative — counters only go up)."""
        self.value += amount


class Gauge:
    """Last-written value.  ``set`` is one attribute store — no lock."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """count/sum/min/max plus P² streaming quantiles, no stored samples.

    Two observation paths:

    - :meth:`observe` — one sample; updates everything including every
      quantile sketch (use for per-request latencies and the like);
    - :meth:`observe_batch` — a whole array at once; count/sum/min/max
      update vectorized and each sketch absorbs the **batch mean** as a
      single observation.  This is the hot-path form: a fleet rollout
      window contributes thousands of residuals per call, and feeding
      each one through a Python-level sketch update would put an O(n)
      interpreter loop back on the path the engine just vectorized.
      Quantiles of batch-observed series are therefore quantiles *of
      per-batch means* — exactly what the engine's "physics-residual
      summaries per window" need, and documented at the call sites.
    """

    __slots__ = ("count", "total", "vmin", "vmax", "_sketches")

    def __init__(self, quantiles: tuple[float, ...] = DEFAULT_QUANTILES):
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self._sketches = {float(p): P2Quantile(p) for p in quantiles}

    def observe(self, value: float) -> None:
        """Fold one sample into counts and every quantile sketch."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        for sketch in self._sketches.values():
            sketch.add(value)

    def observe_batch(self, values: np.ndarray) -> None:
        """Fold an array of samples in; sketches absorb the batch mean."""
        n = values.size
        if n == 0:
            return
        self.count += n
        total = float(values.sum())
        self.total += total
        vmin = float(values.min())
        vmax = float(values.max())
        if vmin < self.vmin:
            self.vmin = vmin
        if vmax > self.vmax:
            self.vmax = vmax
        mean = total / n
        for sketch in self._sketches.values():
            sketch.add(mean)

    def quantile(self, p: float) -> float:
        """Current estimate for one of the configured quantiles."""
        return self._sketches[float(p)].value()

    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def summary(self) -> dict:
        """JSON-safe state: count, sum, min, max, quantile estimates."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": None if self.count == 0 else self.vmin,
            "max": None if self.count == 0 else self.vmax,
            "quantiles": {
                repr(p): (None if self.count == 0 else sketch.value())
                for p, sketch in self._sketches.items()
            },
        }


def escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text-format spec.

    Backslash, double-quote, and line-feed are the three characters the
    exposition format requires escaping inside a quoted label value;
    anything else passes through.  Applied at series-key construction,
    so snapshot keys (the wire/merge format) are already exposition-safe
    and :func:`prometheus_text` can emit them verbatim.
    """
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def series_key(name: str, labels: dict[str, str] | None) -> str:
    """Canonical series identity: ``name`` or ``name{k="v",...}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{escape_label_value(labels[k])}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Labeled series of counters/gauges/histograms with one snapshot view.

    ``counter``/``gauge``/``histogram`` get-or-create a series under
    the registry lock and return the instrument object; updates on that
    object are lock-free (see the module docstring).  Labels are
    keyword arguments::

        reg = MetricsRegistry()
        served = reg.counter("engine_requests_total", op="estimate", model="lg-a")
        served.inc(128)
        reg.histogram("gateway_latency_seconds", endpoint="predict").observe(0.004)

    :meth:`snapshot` is the JSON/merge format, :meth:`to_prometheus`
    the text exposition.  One registry instance is meant to be shared
    by every component of a process (engine, gateway, drift monitor);
    cross-process topologies merge child snapshots with
    :func:`merge_snapshots`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: list = []

    def add_collector(self, collect) -> None:
        """Register a zero-arg callable run before every :meth:`snapshot`.

        Collectors refresh pull-style series (process RSS/CPU from
        ``/proc``) so every readout path — worker wire ops, topology
        merges, ``/metrics`` exposition — sees current values without
        each caller knowing to poll.  Collector exceptions are swallowed:
        a broken sampler must never take down the readout path.
        """
        self._collectors.append(collect)

    # -- series creation ------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        """Get-or-create a counter series."""
        key = series_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter())
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get-or-create a gauge series."""
        key = series_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge())
        return instrument

    def histogram(
        self, name: str, quantiles: tuple[float, ...] = DEFAULT_QUANTILES, **labels: str
    ) -> Histogram:
        """Get-or-create a histogram series (quantiles fixed at creation)."""
        key = series_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(key, Histogram(quantiles))
        return instrument

    # -- readout ---------------------------------------------------------
    def snapshot(self) -> dict:
        """All series as one JSON-safe dict (the wire and merge format)."""
        for collect in self._collectors:
            try:
                collect()
            except Exception:
                pass
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {k: h.summary() for k, h in self._histograms.items()},
            }

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the current snapshot."""
        return prometheus_text(self.snapshot())

    def counter_value(self, name: str, **labels: str) -> float:
        """Read one counter series (0.0 when it does not exist yet)."""
        instrument = self._counters.get(series_key(name, labels))
        return 0.0 if instrument is None else instrument.value


# -- snapshot-level operations ------------------------------------------
def _split_key(key: str) -> tuple[str, str]:
    """``name{labels}`` -> ``(name, "{labels}")`` (labels part may be empty)."""
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace:]


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Combine per-process snapshots into one fleet-wide view.

    Counters and gauges sum (the gauges this package emits are
    extensive quantities — cell counts, ring-buffer depths — so
    summing across shards is the meaningful combination).  Histograms
    sum count/sum, combine min/max exactly, and average quantile
    estimates weighted by observation count — approximate, but the
    count/sum/min/max stay exact.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hist_acc: dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0.0) + value
        for key, value in snap.get("gauges", {}).items():
            gauges[key] = gauges.get(key, 0.0) + value
        for key, summary in snap.get("histograms", {}).items():
            acc = hist_acc.setdefault(key, {"count": 0, "sum": 0.0, "min": None, "max": None, "_wq": {}})
            count = summary.get("count", 0)
            acc["count"] += count
            acc["sum"] += summary.get("sum", 0.0)
            for bound, pick in (("min", min), ("max", max)):
                value = summary.get(bound)
                if value is not None:
                    acc[bound] = value if acc[bound] is None else pick(acc[bound], value)
            if count:
                for p, q in (summary.get("quantiles") or {}).items():
                    if q is not None:
                        total, weight = acc["_wq"].get(p, (0.0, 0))
                        acc["_wq"][p] = (total + q * count, weight + count)
    histograms = {}
    for key, acc in hist_acc.items():
        weighted = acc.pop("_wq")
        acc["quantiles"] = {p: total / weight for p, (total, weight) in weighted.items()}
        histograms[key] = acc
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def prometheus_text(snapshot: dict) -> str:
    """Render a snapshot (or merged snapshot) in Prometheus text format.

    Counters and gauges emit one sample line per series; histograms
    emit the summary convention — ``name{quantile="0.95",...}`` lines
    plus ``name_count`` / ``name_sum`` — with ``name_min`` /
    ``name_max`` as companion gauges.
    """
    lines: list[str] = []
    for kind, type_tag in (("counters", "counter"), ("gauges", "gauge")):
        seen: set[str] = set()
        for key in sorted(snapshot.get(kind, {})):
            name, _ = _split_key(key)
            if name not in seen:
                seen.add(name)
                lines.append(f"# TYPE {name} {type_tag}")
            lines.append(f"{key} {snapshot[kind][key]:g}")
    seen = set()
    for key in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][key]
        name, labels = _split_key(key)
        if name not in seen:
            seen.add(name)
            lines.append(f"# TYPE {name} summary")
        inner = labels[1:-1] if labels else ""
        for p, q in sorted((summary.get("quantiles") or {}).items()):
            if q is None:
                continue
            label_str = f'quantile="{escape_label_value(p)}"' + (f",{inner}" if inner else "")
            lines.append(f"{name}{{{label_str}}} {q:g}")
        lines.append(f"{name}_count{labels} {summary.get('count', 0):g}")
        lines.append(f"{name}_sum{labels} {summary.get('sum', 0.0):g}")
        for bound in ("min", "max"):
            value = summary.get(bound)
            if value is not None:
                lines.append(f"{name}_{bound}{labels} {value:g}")
    return "\n".join(lines) + ("\n" if lines else "")
