"""HTTP exposition: the stack's first network-facing observability surface.

A tiny stdlib-threaded HTTP server that publishes what PR 5 could only
write to files at end of run:

- ``/metrics``  — Prometheus text exposition (version 0.0.4) of a live
  :class:`~repro.monitor.metrics.MetricsRegistry` (or a callable
  returning a snapshot dict — the ``monitor serve`` replay path).
- ``/traces``   — recent committed span trees from a
  :class:`~repro.monitor.tracing.SpanTracer` as JSON
  (``?limit=N``, ``?format=chrome`` for a chrome://tracing export).
- ``/healthz``  — JSON liveness, 200 when ``ok`` is truthy else 503.

Deliberate scope limits: the server renders the *parent process*
registry only.  A full-topology merge
(:meth:`repro.serve.sharding.ShardedFleet.metrics`) round-trips the
worker pipes, which are owned by the serving thread — scraping them
concurrently with traffic would interleave frames and corrupt the
stream.  Parent-side counters/histograms (gateway, batcher, wire
client, trace rollups) cover the live-scrape story; the end-of-run
``--metrics-json`` report still carries the merged topology view.

Serving uses :class:`http.server.ThreadingHTTPServer` on a daemon
thread — no new dependencies, one thread per in-flight scrape, and
``port=0`` binds an ephemeral port for tests.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .metrics import prometheus_text

__all__ = ["ExpositionServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Routes one scrape; the owning server object rides on ``self.server``."""

    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # quiet: scrapes are periodic noise
        pass

    def do_GET(self):  # noqa: N802 - http.server API name
        owner: ExpositionServer = self.server.owner
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            self._reply(200, PROMETHEUS_CONTENT_TYPE, owner.render_metrics().encode("utf-8"))
        elif route == "/traces":
            query = parse_qs(parsed.query)
            limit = None
            if "limit" in query:
                try:
                    limit = max(0, int(query["limit"][0]))
                except ValueError:
                    self._reply(400, "application/json", b'{"error": "limit must be an integer"}')
                    return
            chrome = query.get("format", [""])[0] == "chrome"
            body = json.dumps(owner.render_traces(limit=limit, chrome=chrome)).encode("utf-8")
            self._reply(200, "application/json", body)
        elif route == "/healthz":
            status = owner.render_health()
            code = 200 if status.get("ok") else 503
            self._reply(code, "application/json", json.dumps(status).encode("utf-8"))
        else:
            self._reply(404, "application/json", b'{"error": "not found"}')

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ExpositionServer:
    """Own one scrape endpoint for a registry and/or tracer.

    Parameters
    ----------
    metrics:
        A :class:`~repro.monitor.metrics.MetricsRegistry` (anything with
        ``to_prometheus()``), a zero-arg callable returning a snapshot
        dict (rendered via :func:`~repro.monitor.metrics.prometheus_text`),
        or ``None`` (``/metrics`` serves an empty exposition).
    tracer:
        Optional :class:`~repro.monitor.tracing.SpanTracer` backing
        ``/traces``.
    health:
        Optional zero-arg callable returning a JSON-safe dict with at
        least ``ok``; defaults to always-healthy.
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port; read
        :attr:`port` / :attr:`url` after :meth:`start`.
    """

    def __init__(self, metrics=None, *, tracer=None, health=None, host: str = "127.0.0.1", port: int = 0):
        self.metrics = metrics
        self.tracer = tracer
        self.health = health
        self.host = host
        self._requested_port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> ExpositionServer:
        """Bind and serve on a daemon thread; returns self for chaining."""
        if self._server is not None:
            raise RuntimeError("exposition server already started")
        server = ThreadingHTTPServer((self.host, self._requested_port), _Handler)
        server.daemon_threads = True
        server.owner = self
        self._server = server
        self._thread = threading.Thread(target=server.serve_forever, name="exposition", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down and release the port (idempotent)."""
        server, thread = self._server, self._thread
        self._server = None
        self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> ExpositionServer:
        return self.start()

    def __exit__(self, *exc):
        self.stop()
        return False

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- rendering (also the unit-test surface, no HTTP needed) ---------
    def render_metrics(self) -> str:
        source = self.metrics
        if source is None:
            return ""
        if hasattr(source, "to_prometheus"):
            return source.to_prometheus()
        if callable(source):
            return prometheus_text(source() or {})
        return prometheus_text(source)

    def render_traces(self, limit: int | None = None, chrome: bool = False) -> dict:
        if self.tracer is None:
            return {"traceEvents": []} if chrome else {"traces": [], "summary": {}}
        if chrome:
            return self.tracer.to_chrome(limit=limit)
        return {"traces": self.tracer.trace_trees(limit=limit), "summary": self.tracer.counts()}

    def render_health(self) -> dict:
        if self.health is None:
            return {"ok": True}
        try:
            status = self.health()
        except Exception as exc:  # health probe itself failing is unhealthy
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        if not isinstance(status, dict):
            return {"ok": bool(status)}
        return status
