"""CI lane for the closed retraining loop: drift → retrain → canary → promote.

Reduced end-to-end run against a *trained* checkpoint (the serve-soak
lanes train one anyway):

1. **Promote arm** — publish a degraded copy of the checkpoint as the
   stable model of a journaled, drift-monitored fleet, drive live
   rollout traffic through it, and tick the control plane
   (:class:`repro.monitor.autopilot.ControlLoop` with a
   :class:`repro.learn.RetrainLoop` attached) until the automatically
   retrained candidate is published to the canary channel and promoted
   to stable — no manual registry operation anywhere.
2. **Latency arm** — same plant, but the candidate's serving path is
   artificially slowed; the autopilot's ``latency_budget`` gate must
   roll it back (reason ``latency``) and leave stable at v1.

Exit 0 when both arms behave; exit 1 with a diagnosis otherwise.  A
JSON record of both arms is written to ``--json`` for the artifact
upload.

Usage::

    PYTHONPATH=src python scripts/e2e_retrain.py \\
        --checkpoint soak_model.npz --json E2E_retrain.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import ModelConfig, TwoBranchSoCNet
from repro.learn import FineTuneConfig, RetrainConfig, RetrainLoop
from repro.monitor.autopilot import (
    AutoCanaryPolicy,
    AutopilotConfig,
    ControlLoop,
    DivergenceProbe,
)
from repro.monitor.drift import DriftMonitor
from repro.nn.serialization import load_state
from repro.serve import (
    CanaryController,
    FleetEngine,
    ModelRegistry,
    StateJournal,
    generate_fleet,
)


def load_checkpoint(path: str) -> TwoBranchSoCNet:
    state, meta = load_state(path)
    if meta is None or "horizon_scale" not in meta:
        raise SystemExit(f"{path} is not a repro-soc checkpoint")
    model = TwoBranchSoCNet(
        ModelConfig(hidden=tuple(meta["hidden"]), horizon_scale_s=meta["horizon_scale"]),
        rng=np.random.default_rng(0),
    )
    model.load_state_dict(state)
    return model


def degrade(base: TwoBranchSoCNet) -> TwoBranchSoCNet:
    """The injected fault: Branch 2's output head drifts far off-physics."""
    degraded = TwoBranchSoCNet(base.config, rng=np.random.default_rng(1))
    state = {k: v.copy() for k, v in base.state_dict().items()}
    state["branch2.mlp.net.layers.6.bias"] = state["branch2.mlp.net.layers.6.bias"] + 2.0
    degraded.load_state_dict(state)
    return degraded


class SlowCanaryEngine:
    """Delegates to the engine, stalling predicts on canary-pinned cells."""

    def __init__(self, engine, controller, delay_s=0.05):
        self._engine = engine
        self._controller = controller
        self.delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def predict(self, cell_ids, *args, **kwargs):
        if set(cell_ids) & set(self._controller.canary_cells()):
            time.sleep(self.delay_s)
        return self._engine.predict(cell_ids, *args, **kwargs)


def build_plane(base: TwoBranchSoCNet, workdir: Path, latency_budget=None, slow_canary=False):
    registry = ModelRegistry(workdir / "registry")
    registry.publish("serve", degrade(base))
    journal_path = workdir / "fleet.journal"
    engine = FleetEngine(
        registry=registry, journal=StateJournal(journal_path), drift=DriftMonitor()
    )
    fleet = generate_fleet(
        12, seed=3, ambient_temps_c=(25.0,), c_rates=(1.0,), protocols=("discharge",),
        max_time_s=1800.0,
    )
    for member in fleet.members:
        engine.register_cell(member.cell_id, model_name="serve")
    engine.rollout_fleet(fleet.assignments(), 120.0)

    controller = CanaryController(engine, registry, "serve", fraction=0.5, max_divergence=10.0)
    probe_engine = SlowCanaryEngine(engine, controller) if slow_canary else engine
    probe = DivergenceProbe(probe_engine, controller, sample=2)
    # loose accuracy gates: the corrected candidate legitimately
    # diverges from the degraded stable it replaces
    policy = AutoCanaryPolicy(
        controller,
        config=AutopilotConfig(
            min_observations=2,
            divergence_budget=5.0,
            hard_divergence=10.0,
            cooldown_ticks=2,
            latency_budget=latency_budget,
        ),
    )
    retrain = RetrainLoop(
        source=engine,
        journals=journal_path,
        registry=registry,
        target=controller,
        config=RetrainConfig(
            name="serve", cooldown_ticks=8, finetune=FineTuneConfig(epochs=25, lr=3e-3)
        ),
    )
    loop = ControlLoop(engine=engine, autopilot=policy, probe=probe, retrain=retrain, interval_s=0)
    return loop, registry, controller, policy


def promote_arm(base: TwoBranchSoCNet, workdir: Path) -> dict:
    loop, registry, controller, policy = build_plane(base, workdir)
    record = {"arm": "promote", "drift_events": len(loop.engine.drift_events())}
    if record["drift_events"] == 0:
        raise AssertionError("injected degradation produced no drift events")
    for tick in range(10):
        report = loop.tick()
        retrain = report["retrain"]
        if retrain is not None and retrain["status"] == "published":
            record["published_version"] = retrain["version"]
            record["harvest_rows"] = retrain["rows"]
        if report["decision"] == "promote":
            record["promoted_at_tick"] = tick
            break
    else:
        raise AssertionError("autopilot never promoted the retrained candidate")
    if record.get("published_version") != 2:
        raise AssertionError(f"expected candidate v2, got {record.get('published_version')}")
    channels = registry.channels("serve")
    if channels != {"stable": 2}:
        raise AssertionError(f"expected stable=2 and a free canary lane, got {channels}")
    if controller.active:
        raise AssertionError("canary still active after promotion")
    record["channels"] = channels
    record["reason"] = policy.last_reason
    return record


def latency_arm(base: TwoBranchSoCNet, workdir: Path) -> dict:
    loop, registry, controller, policy = build_plane(
        base, workdir, latency_budget=3.0, slow_canary=True
    )
    record = {"arm": "latency-veto"}
    for tick in range(8):
        report = loop.tick()
        if report["decision"] == "rollback":
            record["rolled_back_at_tick"] = tick
            break
    else:
        raise AssertionError("latency gate never rolled the slow candidate back")
    if policy.last_reason != "latency":
        raise AssertionError(f"rollback reason {policy.last_reason!r}, expected 'latency'")
    channels = registry.channels("serve")
    if channels != {"stable": 1}:
        raise AssertionError(f"slow candidate must not ship; channels: {channels}")
    record["channels"] = channels
    record["reason"] = policy.last_reason
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--checkpoint", required=True, help="trained model checkpoint (.npz)")
    parser.add_argument("--json", default=None, help="write the run record here")
    args = parser.parse_args(argv)

    base = load_checkpoint(args.checkpoint)
    records = []
    with tempfile.TemporaryDirectory(prefix="e2e_retrain_") as tmp:
        root = Path(tmp)
        for arm, run in (("promote", promote_arm), ("latency-veto", latency_arm)):
            t0 = time.perf_counter()
            try:
                record = run(base, root / arm)
            except AssertionError as exc:
                print(f"FAIL [{arm}]: {exc}", file=sys.stderr)
                if args.json:
                    Path(args.json).write_text(
                        json.dumps({"ok": False, "arm": arm, "error": str(exc)}, indent=2)
                    )
                return 1
            record["elapsed_s"] = round(time.perf_counter() - t0, 3)
            print(f"PASS [{arm}]: {record}")
            records.append(record)
    if args.json:
        Path(args.json).write_text(json.dumps({"ok": True, "arms": records}, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
