"""Poll a live exposition server and validate its Prometheus output.

CI helper for the serve-soak lane: while ``repro-soc serve-sim
--metrics-port`` runs in the background, this script polls ``/healthz``
until the server is up and healthy, then fetches ``/metrics`` and
checks that

- the body parses as Prometheus text exposition (every non-comment
  line is ``<name>{labels}<space><float>``), and
- every ``--require``'d metric family name appears.

Exit 0 on success (optionally writing the scraped body to ``--out``),
exit 1 if the deadline passes first.  stdlib only — no requests, no
prometheus_client.

Usage::

    python scripts/scrape_exposition.py --url http://127.0.0.1:9923 \\
        --require gateway_requests_total --require trace_stage_seconds \\
        --timeout 240 --out scrape.txt
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
import urllib.error
import urllib.request

# metric line: name, optional {labels}, space, value parseable as float
_SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{.*\})? (\S+)$")


def _get(url: str, timeout_s: float = 5.0) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8", errors="replace")


def validate_exposition(body: str, required: list[str]) -> list[str]:
    """Return a list of problems (empty = valid exposition, all present)."""
    problems = []
    seen = set()
    for lineno, line in enumerate(body.splitlines(), start=1):
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: not a metric sample: {line!r}")
            continue
        try:
            float(match.group(3))
        except ValueError:
            problems.append(f"line {lineno}: unparseable value: {line!r}")
            continue
        seen.add(match.group(1))
    for name in required:
        # histogram families expose name_bucket/_sum/_count series
        if name not in seen and not any(s.startswith(name + "_") for s in seen):
            problems.append(f"required metric family missing: {name}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--url", required=True, help="server base URL, e.g. http://127.0.0.1:9923")
    parser.add_argument("--require", action="append", default=[],
                        help="metric family that must appear (repeatable)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="overall deadline in seconds")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between poll attempts")
    parser.add_argument("--out", default=None,
                        help="write the successful /metrics body here")
    args = parser.parse_args(argv)

    base = args.url.rstrip("/")
    deadline = time.monotonic() + args.timeout
    attempt = 0
    last_error = "no attempt made"
    while time.monotonic() < deadline:
        attempt += 1
        try:
            status, body = _get(base + "/healthz")
        except (OSError, urllib.error.URLError) as exc:
            last_error = f"/healthz unreachable: {exc}"
            time.sleep(args.interval)
            continue
        if status != 200:
            last_error = f"/healthz returned {status}: {body.strip()[:200]}"
            time.sleep(args.interval)
            continue
        try:
            health = json.loads(body)
        except json.JSONDecodeError as exc:
            last_error = f"/healthz not JSON: {exc}"
            time.sleep(args.interval)
            continue
        if not health.get("ok"):
            last_error = f"/healthz not ok: {health}"
            time.sleep(args.interval)
            continue

        try:
            status, metrics_body = _get(base + "/metrics")
        except (OSError, urllib.error.URLError) as exc:
            last_error = f"/metrics unreachable: {exc}"
            time.sleep(args.interval)
            continue
        if status != 200:
            last_error = f"/metrics returned {status}"
            time.sleep(args.interval)
            continue
        problems = validate_exposition(metrics_body, args.require)
        if problems:
            # the run may not have emitted the required series yet
            last_error = "; ".join(problems[:5])
            time.sleep(args.interval)
            continue

        lines = len(metrics_body.splitlines())
        print(f"scrape ok after {attempt} attempt(s): {lines} exposition lines, "
              f"health={health}")
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(metrics_body)
            print(f"wrote {args.out}")
        return 0

    print(f"FAIL: no valid scrape within {args.timeout:g}s "
          f"({attempt} attempts; last error: {last_error})", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
