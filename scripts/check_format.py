#!/usr/bin/env python3
"""Incremental ``ruff format --check`` gate (the lint job's one-liner).

Formatting is adopted file by file (see ruff.toml): new modules start
on the allowlist below, and existing files join it when a PR touches
them and brings them into conformance.  Keeping the list here — not in
the workflow — means the CI step never changes
(``python scripts/check_format.py``) and the diff that grows the list
lives next to the code it formats.

Run locally the same way; requires ``ruff`` on PATH (CI installs it).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ALLOWLIST = [
    "benchmarks/check_bench_regression.py",
    "scripts/check_format.py",
    "src/repro/core/kernels.py",
    "src/repro/monitor/__init__.py",
    "src/repro/monitor/autopilot.py",
    "src/repro/monitor/drift.py",
    "src/repro/monitor/metrics.py",
    "src/repro/serve/__init__.py",
    "src/repro/serve/canary.py",
    "src/repro/serve/gateway.py",
    "src/repro/serve/persistence.py",
    "src/repro/serve/scheduler.py",
    "src/repro/serve/sharding.py",
    "src/repro/serve/wire.py",
    "src/repro/serve/workers.py",
    "tests/test_core_kernels.py",
    "tests/test_monitor_autopilot.py",
    "tests/test_monitor_drift.py",
    "tests/test_monitor_metrics.py",
    "tests/test_serve_gateway.py",
    "tests/test_serve_wire.py",
    "tests/test_serve_workers.py",
]

# Touched but still on the repo's legacy continuation style — next PR
# that edits them should run `ruff format` and move them up:
# src/repro/cli.py, src/repro/serve/engine.py,
# benchmarks/bench_fleet_throughput.py,
# benchmarks/bench_kernel_latency.py, tests/test_serve_persistence.py
#
# Written without ruff on the machine, so not yet pinned to its exact
# output — first PR with ruff available should format + move them up:
# src/repro/monitor/tracing.py, src/repro/monitor/exposition.py,
# scripts/scrape_exposition.py, tests/test_monitor_tracing.py,
# tests/test_serve_tracing.py, tests/test_serve_registry_follow.py,
# src/repro/serve/transport.py, src/repro/serve/daemon.py,
# src/repro/serve/client.py, src/repro/serve/archive.py,
# examples/serve_client.py, tests/test_serve_transport.py,
# tests/test_serve_remote_workers.py, tests/test_serve_archive.py,
# tests/test_serve_daemon.py, src/repro/serve/driftconfig.py,
# src/repro/learn/__init__.py, src/repro/learn/harvest.py,
# src/repro/learn/finetune.py, src/repro/learn/publish.py,
# src/repro/learn/loop.py, scripts/e2e_retrain.py,
# tests/test_learn_harvest.py, tests/test_learn_finetune.py,
# tests/test_learn_loop.py, tests/test_learn_e2e.py,
# src/repro/monitor/resources.py, src/repro/serve/loadgen.py,
# src/repro/perflab/__init__.py, src/repro/perflab/table.py,
# src/repro/perflab/runner.py, src/repro/perflab/analysis.py,
# benchmarks/perf_lab.py, tests/test_monitor_resources.py,
# tests/test_serve_loadgen.py, tests/test_perflab.py,
# tests/test_scripts_scrape.py, tests/test_bench_regression.py


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    missing = [name for name in ALLOWLIST if not (root / name).exists()]
    if missing:
        print(f"format allowlist names missing files: {', '.join(missing)}")
        return 2
    return subprocess.call(["ruff", "format", "--check", *ALLOWLIST], cwd=root)


if __name__ == "__main__":
    sys.exit(main())
