"""Regenerate Table I: state-of-the-art comparison on the LG campaign.

Paper artifact: SoC(t) and SoC(t+N) MAE at 0 C and 25 C for the
two-branch network (No-PINN / PINN-All), the Wong-style LSTM, and the
Dang-style DE-MLP/DE-LSTM, next to memory and operation counts.

Expected shape (EXP-T1): our 2.3k-parameter model is within a small
factor of the LSTM's accuracy while being orders of magnitude cheaper
(paper: 409x fewer parameters, ~260,000x fewer operations), and both
beat the DE-* baselines.
"""

import numpy as np

from repro.core.complexity import lstm_complexity, model_complexity
from repro.core.model import TwoBranchSoCNet
from repro.baselines.lstm import paper_scale_config
from repro.eval.experiments import run_table1
from repro.nn.recurrent import LSTMRegressor


def test_table1_soa(benchmark, budget):
    rows = benchmark.pedantic(run_table1, args=(budget,), kwargs={"quiet": False}, rounds=1, iterations=1)
    by_key = {(r[0], r[1]): r for r in rows}
    benchmark.extra_info["rows"] = [[str(c) for c in r] for r in rows]

    ours_25 = by_key[("PINN-All", "25")]
    lstm_25 = by_key[("LSTM [17]", "25")]
    de_mlp_0 = by_key[("DE-MLP [7]", "0")]
    de_lstm_0 = by_key[("DE-LSTM [7]", "0")]

    # 1. competitive estimation accuracy vs the LSTM SoA at 25 C
    #    (paper: 0.014 vs 0.012 — within 2x here to absorb seed noise)
    assert ours_25[2] < lstm_25[2] * 2.0
    # 2. cold is harder than warm for our model (paper: 0.031 vs 0.014)
    assert by_key[("PINN-All", "0")][2] >= ours_25[2] * 0.8
    # 3. prediction (SoC(t+N)) adds little over estimation for PINN-All
    assert ours_25[3] < ours_25[2] * 2.0
    # 4. the DE-informed baselines trail our model at 0 C (paper: 4-6x)
    assert de_mlp_0[2] > by_key[("PINN-All", "0")][2]
    assert de_lstm_0[2] > by_key[("PINN-All", "0")][2]

    # 5. complexity ratios have the paper's orders of magnitude
    two_branch = model_complexity(TwoBranchSoCNet(rng=np.random.default_rng(0)))
    cfg = paper_scale_config()
    lstm_report = lstm_complexity(
        LSTMRegressor(hidden_size=cfg.hidden_size, num_layers=cfg.num_layers,
                      dense_size=cfg.dense_size, rng=np.random.default_rng(0)),
        seq_len=cfg.seq_len,
    )
    assert lstm_report.parameters / two_branch.parameters > 100  # paper: 409x
    assert lstm_report.ops / two_branch.ops > 10_000  # paper: ~260,000x
    benchmark.extra_info["param_ratio"] = lstm_report.parameters / two_branch.parameters
    benchmark.extra_info["ops_ratio"] = lstm_report.ops / two_branch.ops
