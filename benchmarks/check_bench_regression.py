"""Gate a fleet-throughput benchmark run against a committed baseline.

Raw cells/sec is not comparable across CI runners (the fleet on a
loaded shared VM can be half the speed of the same code on an idle
one), so the gated metric is the **batched-over-loop speedup**: both
paths run on the same machine in the same process, which makes their
ratio a machine-calibrated measure of how much the serving layer's
batching is actually buying.  A change that slows the batched path
down shows up as a speedup drop regardless of runner hardware.

Checks applied to the current run (``--current``, written by
``bench_fleet_throughput.py --json``):

- ``speedup`` must not fall more than ``--tolerance`` (default 30%)
  below the baseline's;
- ``max_traj_diff`` must stay within the 1e-9 equivalence budget
  (a throughput "optimization" that changes the numbers is a bug);
- ``sharded_speedup`` is reported for the log but **not** gated: at
  smoke scale the sharded path's wall time is a few milliseconds and
  occasionally doubles under runner contention, which would make the
  gate flaky (the whole point of the separate bench job is that a
  flake cannot mask a real failure — a flaky gate would reintroduce
  exactly that noise).

Raw throughput is still printed for the log, and the current record is
uploaded as a CI artifact so a slow creep across many PRs can be
audited after the fact.

Usage::

    python benchmarks/check_bench_regression.py \\
        --baseline benchmarks/baselines/BENCH_fleet_baseline.json \\
        --current BENCH_fleet.json [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys


def check(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Compare a current benchmark record to a baseline; returns failures."""
    failures: list[str] = []
    for key in ("cells", "step_s", "fast"):
        if baseline.get(key) != current.get(key):
            failures.append(
                f"config mismatch on {key!r}: baseline {baseline.get(key)!r} "
                f"vs current {current.get(key)!r} (not comparing apples to apples)"
            )
    if failures:
        return failures
    if current["max_traj_diff"] > 1e-9:
        failures.append(f"trajectory divergence {current['max_traj_diff']:.3e} exceeds the 1e-9 budget")
    base, cur = baseline["speedup"], current["speedup"]
    floor = base * (1.0 - tolerance)
    verdict = "ok" if cur >= floor else "REGRESSION"
    print(
        f"speedup: baseline {base:.1f}x, current {cur:.1f}x, "
        f"floor {floor:.1f}x ({tolerance:.0%} tolerance) -> {verdict}"
    )
    if cur < floor:
        failures.append(
            f"speedup regressed: {cur:.1f}x is more than {tolerance:.0%} "
            f"below the baseline {base:.1f}x"
        )
    if baseline.get("sharded_speedup") and current.get("sharded_speedup"):
        print(
            f"sharded_speedup (informational, not gated): "
            f"baseline {baseline['sharded_speedup']:.1f}x, "
            f"current {current['sharded_speedup']:.1f}x"
        )
    print(
        f"raw throughput (informational): "
        f"{current['cell_steps_per_s_batched']:,.0f} cell-steps/s batched "
        f"(baseline recorded {baseline['cell_steps_per_s_batched']:,.0f})"
    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="fresh benchmark JSON")
    parser.add_argument(
        "--tolerance", type=float, default=0.30, help="allowed fractional speedup drop (default 0.30)"
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be within [0, 1)")
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(args.current, encoding="utf-8") as fh:
        current = json.load(fh)
    failures = check(baseline, current, args.tolerance)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
