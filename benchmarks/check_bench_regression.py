"""Gate a benchmark run against a committed baseline.

Raw throughput is not comparable across CI runners (the fleet on a
loaded shared VM can be half the speed of the same code on an idle
one), so every gated metric is a **same-machine ratio**, which makes it
a machine-calibrated measure of what the serving layer is actually
buying:

- ``speedup`` (from ``bench_fleet_throughput.py --json``): the batched
  rollout over the per-cell loop, both timed in the same process.  A
  change that slows the batched path down shows up as a speedup drop
  regardless of runner hardware.
- ``gateway_ratio`` (from ``--gateway --gateway-json``): the async
  gateway's sustained req/s over the direct one-engine-call-per-request
  path.  A change that breaks micro-batch coalescing or bloats the
  event loop shows up as a ratio drop.
- ``kernel_speedup`` (from ``bench_kernel_latency.py --json``): the
  compiled inference kernel's single-row estimate latency over the
  Tensor path's, both timed in the same process.  A change that makes
  the kernel allocate, re-slice buffers, or fall off the GEMM chain
  shows up as a speedup drop.
- ``float32_speedup`` (same record): the float32 serving tier's
  batched throughput over the float64 kernel's.  A change that upcasts
  mid-chain (silently restoring float64 work) shows up as the ratio
  collapsing to ~1.
- ``fused_speedup`` (same record): one cross-model fused GEMM chain
  over the per-model dispatch loop on a mixed-model batch in the
  dispatch-bound regime the engine fuses in.
- ``shm_payload_ratio`` (from the fleet record): a bulk array
  round-trip copied inline through a pipe over the same payload riding
  the shared-memory ring.  A change that breaks ring placement (so
  payloads silently fall back inline) shows up as the ratio dropping
  to ~1.

Checks applied to the current run (``--current``):

- the configured metric must not fall more than ``--tolerance``
  (default 30%) below the baseline's;
- for ``speedup``: ``max_traj_diff`` must stay within the 1e-9
  equivalence budget (a throughput "optimization" that changes the
  numbers is a bug); ``sharded_speedup``/``process_speedup`` are
  reported for the log but **not** gated — at smoke scale their wall
  time is a few milliseconds and occasionally doubles under runner
  contention, which would make the gate flaky (the whole point of the
  separate bench job is that a flake cannot mask a real failure);
- for ``gateway_ratio``: the run must have zero errored and zero shed
  completions (a gateway that hits throughput by dropping work has not
  hit throughput);
- for ``kernel_speedup``: ``max_equiv_diff`` must stay within the 1e-9
  golden-equivalence budget (same reasoning as ``max_traj_diff``), and
  ``rollout_kernel_speedup``/``frames_speedup`` are reported for the
  log but not gated (at smoke scale their wall time is small enough
  for runner contention to flip them);
- for ``float32_speedup``: the float32 estimate/predict deltas must
  stay within the documented 1e-6 budget;
- for ``fused_speedup``: ``fused_diff`` must stay within the 1e-9
  golden-equivalence budget.

Raw numbers are still printed for the log, and the current records are
uploaded as CI artifacts so a slow creep across many PRs can be
audited after the fact.

Usage::

    python benchmarks/check_bench_regression.py \\
        --baseline benchmarks/baselines/BENCH_fleet_baseline.json \\
        --current BENCH_fleet.json [--tolerance 0.30] [--metric speedup]
"""

from __future__ import annotations

import argparse
import json
import sys

# keys that must match between baseline and current for the comparison
# to be apples-to-apples, per gated metric
_CONFIG_KEYS = {
    "speedup": ("cells", "step_s", "fast"),
    "gateway_ratio": ("cells", "requests", "clients", "max_batch"),
    "kernel_speedup": ("reps", "batch", "step_s", "fast"),
    "float32_speedup": ("reps", "batch", "fast"),
    "fused_speedup": ("reps", "fused_models", "fused_batch", "fast"),
    "shm_payload_ratio": ("shm_payload_mb", "workers", "fast"),
}


def check(baseline: dict, current: dict, tolerance: float, metric: str = "speedup") -> list[str]:
    """Compare a current benchmark record to a baseline; returns failures."""
    failures: list[str] = []
    for key in _CONFIG_KEYS[metric]:
        if baseline.get(key) != current.get(key):
            failures.append(
                f"config mismatch on {key!r}: baseline {baseline.get(key)!r} "
                f"vs current {current.get(key)!r} (not comparing apples to apples)"
            )
    if failures:
        return failures
    if metric == "speedup" and current["max_traj_diff"] > 1e-9:
        failures.append(f"trajectory divergence {current['max_traj_diff']:.3e} exceeds the 1e-9 budget")
    if metric == "kernel_speedup" and current["max_equiv_diff"] > 1e-9:
        failures.append(
            f"kernel divergence {current['max_equiv_diff']:.3e} exceeds the 1e-9 "
            f"golden-equivalence budget"
        )
    if metric == "gateway_ratio" and (current.get("errors") or current.get("shed")):
        failures.append(
            f"gateway run dropped work: errors={current.get('errors')} shed={current.get('shed')} "
            f"(throughput with dropped completions does not count)"
        )
    if metric == "float32_speedup":
        worst32 = max(current["float32_est_diff"], current["float32_pred_diff"])
        if worst32 > 1e-6:
            failures.append(f"float32 delta {worst32:.3e} exceeds the documented 1e-6 budget")
    if metric == "fused_speedup" and current["fused_diff"] > 1e-9:
        failures.append(
            f"fused-chain divergence {current['fused_diff']:.3e} exceeds the 1e-9 "
            f"golden-equivalence budget"
        )
    base, cur = baseline[metric], current[metric]
    floor = base * (1.0 - tolerance)
    verdict = "ok" if cur >= floor else "REGRESSION"
    print(
        f"{metric}: baseline {base:.1f}x, current {cur:.1f}x, "
        f"floor {floor:.1f}x ({tolerance:.0%} tolerance) -> {verdict}"
    )
    if cur < floor:
        failures.append(
            f"{metric} regressed: {cur:.1f}x is more than {tolerance:.0%} "
            f"below the baseline {base:.1f}x"
        )
    extras = {
        "speedup": ("sharded_speedup", "process_speedup", "shm_speedup"),
        "gateway_ratio": (),
        "kernel_speedup": ("batched_speedup", "rollout_kernel_speedup", "frames_speedup"),
        "float32_speedup": (),
        "fused_speedup": (),
        "shm_payload_ratio": (),
    }[metric]
    for extra in extras:
        if baseline.get(extra) and current.get(extra):
            print(
                f"{extra} (informational, not gated): "
                f"baseline {baseline[extra]:.1f}x, current {current[extra]:.1f}x"
            )
    if metric == "speedup":
        print(
            f"raw throughput (informational): "
            f"{current['cell_steps_per_s_batched']:,.0f} cell-steps/s batched "
            f"(baseline recorded {baseline['cell_steps_per_s_batched']:,.0f})"
        )
    elif metric == "kernel_speedup":
        print(
            f"raw latency (informational): "
            f"kernel single-row p50 {current['kernel_p50_us']:.1f}us "
            f"(baseline recorded {baseline['kernel_p50_us']:.1f}us)"
        )
    elif metric == "gateway_ratio":
        print(
            f"raw throughput (informational): "
            f"{current['gateway_req_s']:,.0f} req/s through the gateway "
            f"(baseline recorded {baseline['gateway_req_s']:,.0f})"
        )
    elif metric == "float32_speedup":
        print(
            f"raw throughput (informational): "
            f"{current['float32_rows_per_s']:,.0f} float32 rows/s "
            f"(baseline recorded {baseline['float32_rows_per_s']:,.0f})"
        )
    elif metric == "fused_speedup":
        print(
            f"raw throughput (informational): "
            f"{current['mixed_model_rows_per_s']:,.0f} fused mixed-model rows/s "
            f"(baseline recorded {baseline['mixed_model_rows_per_s']:,.0f})"
        )
    else:
        print(
            f"raw latency (informational): "
            f"shm round-trip p50 {current['shm_payload_p50_us']:.0f}us "
            f"(baseline recorded {baseline['shm_payload_p50_us']:.0f}us)"
        )
    return failures


def check_all(baseline: dict, current: dict, tolerance: float) -> int:
    """Gate every metric present in both records; per-metric verdict table.

    Returns the number of failing metrics.  Erroring when the records
    share no gated metric catches the footgun of pointing ``--all`` at
    mismatched record kinds (e.g. a kernel baseline vs a fleet run) and
    silently gating nothing.
    """
    shared = [m for m in sorted(_CONFIG_KEYS) if m in baseline and m in current]
    if not shared:
        print("FAIL: baseline and current share no gated metric (mismatched record kinds?)")
        return 1
    results: list[tuple[str, list[str]]] = []
    for metric in shared:
        print(f"--- {metric} ---")
        failures = check(baseline, current, tolerance, metric=metric)
        for failure in failures:
            print(f"FAIL: {failure}")
        results.append((metric, failures))
    width = max(len(m) for m in shared)
    print(f"\n{'metric':<{width}}  verdict")
    for metric, failures in results:
        print(f"{metric:<{width}}  {'FAIL' if failures else 'ok'}")
    return sum(1 for _, failures in results if failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--current", required=True, help="fresh benchmark JSON")
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--metric",
        choices=sorted(_CONFIG_KEYS),
        default="speedup",
        help="which machine-calibrated ratio to gate (default: speedup)",
    )
    group.add_argument(
        "--all",
        action="store_true",
        help="gate every metric present in both records in one invocation",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop of the gated metric (default 0.30)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be within [0, 1)")
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(args.current, encoding="utf-8") as fh:
        current = json.load(fh)
    if args.all:
        failing = check_all(baseline, current, args.tolerance)
        if failing:
            print(f"benchmark gate FAILED ({failing} metric(s))")
            return 1
        print("benchmark gate passed (all shared metrics)")
        return 0
    failures = check(baseline, current, args.tolerance, metric=args.metric)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
