"""Ablation EXP-A1: the split-training scheme (paper Sec. III-B).

The paper reports that (a) stopping gradients between the branches and
(b) feeding Branch 2 ground-truth SoC during training both improve
results.  Our architecture enforces (a) structurally; this ablation
measures (b): training Branch 2 on Branch 1's *estimated* SoC instead
of the ground truth.
"""

import dataclasses

import numpy as np

from repro.core import PhysicsConfig, SplitTrainer, TwoBranchSoCNet, TrainConfig
from repro.datasets import make_estimation_samples, make_prediction_samples
from repro.datasets.sandia import cached_sandia
from repro.eval.metrics import mae
from repro.utils.rng import spawn_seed


def _train_variant(est, pred, test_samples, seed, feed_ground_truth: bool):
    model = TwoBranchSoCNet(rng=np.random.default_rng(spawn_seed(seed, "init")))
    cfg = TrainConfig(epochs_branch1=120, epochs_branch2=120, seed=seed)
    trainer = SplitTrainer(model, cfg, PhysicsConfig(horizons_s=(120.0, 240.0, 360.0)))
    trainer.train_branch1(est)
    if not feed_ground_truth:
        # replace the ground-truth SoC column with Branch 1's estimate
        soc_hat = model.estimate_soc(pred.v_t, pred.i_t, pred.temp_t)
        pred = dataclasses.replace(pred, soc_t=soc_hat)
    trainer.train_branch2(pred)
    return {h: mae(model.predict_samples(s), s.soc_target) for h, s in test_samples.items()}


def test_ablation_ground_truth_feeding(benchmark, budget):
    data = cached_sandia(dataclasses.replace(budget.sandia, cells=("sandia-nmc",)))
    est = make_estimation_samples(data.train())
    pred = make_prediction_samples(data.train(), horizon_s=120.0)
    tests = {h: make_prediction_samples(data.test(), horizon_s=h) for h in (120.0, 360.0)}

    def run():
        rows = {}
        for label, gt in (("ground-truth SoC(t)", True), ("estimated SoC(t)", False)):
            scores = [_train_variant(est, pred, tests, seed, gt) for seed in budget.seeds]
            rows[label] = {h: float(np.mean([s[h] for s in scores])) for h in tests}
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n== EXP-A1: Branch-2 input during training ==")
    for label, per_h in rows.items():
        print(f"  {label:<22s} " + "  ".join(f"@{h:g}s {v:.4f}" for h, v in per_h.items()))
    benchmark.extra_info["rows"] = {k: {f"{h:g}": v for h, v in r.items()} for k, r in rows.items()}

    # the paper's choice must not lose to the alternative by a wide margin
    assert rows["ground-truth SoC(t)"][120.0] < rows["estimated SoC(t)"][120.0] * 1.3
