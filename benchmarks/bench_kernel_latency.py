"""Compiled-kernel latency: Tensor path vs compiled chains, pickle vs frames.

Three measurements of what the compiled inference path
(:mod:`repro.core.kernels`) and the v2 zero-copy wire format
(:mod:`repro.serve.wire`) buy over the PR 3 serving internals:

- **single-row latency** — p50 of one ``estimate_soc`` call, the
  Tensor path vs :class:`repro.core.CompiledTwoBranchKernel`.  The
  gated metric is their same-machine ratio ``kernel_speedup``
  (expected >= 5x: the forward is four tiny GEMMs, the Tensor path is
  mostly object graph).
- **batched throughput** — rows/s at ``--batch`` rows per call, both
  paths, plus a ``rollout_fleet`` run of a synthetic fleet through
  ``FleetEngine(use_kernel=True)`` vs the ``use_kernel=False`` escape
  hatch (``rollout_kernel_speedup``).
- **wire codec** — encode+decode round-trips of a bulk estimate
  request and a fleet-rollout reply: pickle frames vs v2 zero-copy
  frames (``frames_speedup``).
- **float32 tier** — the same batched estimate/predict through
  ``CompiledTwoBranchKernel(dtype=float32)``: ``float32_speedup`` plus
  the measured accuracy deltas vs the float64 kernel
  (``float32_est_diff`` / ``float32_pred_diff``, budget 1e-6).
- **cross-model fusion** — a mixed-model batch served by the
  per-model dispatch loop vs one block-diagonal
  :class:`repro.core.FusedTwoBranchKernel` GEMM chain:
  ``mixed_model_rows_per_s``, ``fused_speedup`` and the fused-vs-loop
  equivalence diff (``fused_diff``, budget 1e-9).

Every kernel measurement is checked against the Tensor path to the
fleet's 1e-9 equivalence budget (``max_equiv_diff``) — a fast kernel
that changes the numbers is a bug, and the CI gate enforces both.

``--json OUT`` writes the machine-readable record; CI uploads it as
the ``BENCH_kernel.json`` artifact and ``check_bench_regression.py
--metric kernel_speedup`` gates it against the committed baseline.

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernel_latency.py [--fast] [--json OUT]
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import time

import numpy as np

from repro.core import CompiledTwoBranchKernel, FusedTwoBranchKernel, TwoBranchSoCNet
from repro.eval.reporting import format_table
from repro.serve import FleetEngine, generate_fleet, wire


def _p50_us(fn, reps: int) -> float:
    """Median per-call latency in microseconds over ``reps`` samples."""
    samples = np.empty(reps)
    for k in range(reps):
        t0 = time.perf_counter()
        fn()
        samples[k] = time.perf_counter() - t0
    return float(np.percentile(samples, 50)) * 1e6


def bench_single_row(model, kernel, reps: int) -> dict:
    """p50 latency of a one-row Branch 1 estimate, both paths."""
    tensor_us = _p50_us(lambda: model.estimate_soc(3.7, 1.0, 25.0), reps)
    kernel_us = _p50_us(lambda: kernel.estimate_soc(3.7, 1.0, 25.0), reps)
    diff = float(np.max(np.abs(model.estimate_soc(3.7, 1.0, 25.0) - kernel.estimate_soc(3.7, 1.0, 25.0))))
    return {
        "tensor_p50_us": tensor_us,
        "kernel_p50_us": kernel_us,
        "kernel_speedup": tensor_us / kernel_us,
        "single_row_diff": diff,
    }


def bench_batched(model, kernel, batch: int, reps: int) -> dict:
    """Batched Branch 1 rows/s, both paths."""
    rng = np.random.default_rng(0)
    v = rng.uniform(2.8, 4.2, batch)
    i = rng.uniform(-5.0, 5.0, batch)
    t = rng.uniform(0.0, 45.0, batch)
    tensor_us = _p50_us(lambda: model.estimate_soc(v, i, t), reps)
    kernel_us = _p50_us(lambda: kernel.estimate_soc(v, i, t), reps)
    diff = float(np.max(np.abs(model.estimate_soc(v, i, t) - kernel.estimate_soc(v, i, t))))
    return {
        "tensor_rows_per_s": batch / (tensor_us * 1e-6),
        "kernel_rows_per_s": batch / (kernel_us * 1e-6),
        "batched_speedup": tensor_us / kernel_us,
        "batched_diff": diff,
    }


def bench_float32(model, kernel, batch: int, reps: int) -> dict:
    """The float32 serving tier vs the float64 kernel, same batch."""
    kernel32 = CompiledTwoBranchKernel(model, dtype=np.float32)
    rng = np.random.default_rng(2)
    v = rng.uniform(2.8, 4.2, batch)
    i = rng.uniform(-5.0, 5.0, batch)
    t = rng.uniform(0.0, 45.0, batch)
    soc = rng.uniform(0.0, 1.0, batch)
    h = rng.uniform(1.0, 400.0, batch)
    kernel32.estimate_soc(v, i, t)  # warm the buffers
    f64_us = _p50_us(lambda: kernel.estimate_soc(v, i, t), reps)
    f32_us = _p50_us(lambda: kernel32.estimate_soc(v, i, t), reps)
    est_diff = float(np.max(np.abs(kernel32.estimate_soc(v, i, t) - kernel.estimate_soc(v, i, t))))
    pred_diff = float(np.max(np.abs(
        kernel32.predict_soc(soc, i, t, h).astype(np.float64) - kernel.predict_soc(soc, i, t, h)
    )))
    return {
        "float32_rows_per_s": batch / (f32_us * 1e-6),
        "float32_speedup": f64_us / f32_us,
        "float32_est_diff": est_diff,
        "float32_pred_diff": pred_diff,
    }


def bench_fused(batch: int, reps: int, seed: int, n_models: int = 8) -> dict:
    """A mixed-model batch: per-model dispatch loop vs one fused chain.

    Measured in the dispatch-bound regime the engine fuses in (at most
    ~16 rows per model group) — larger groups are GEMM-bound and the
    engine keeps the per-model loop for those.
    """
    batch = min(batch, 16 * n_models)
    models = [TwoBranchSoCNet(rng=np.random.default_rng(seed + 10 + k)) for k in range(n_models)]
    kernels = [CompiledTwoBranchKernel(m) for m in models]
    fused = FusedTwoBranchKernel(kernels)
    rng = np.random.default_rng(3)
    v = rng.uniform(2.8, 4.2, batch)
    i = rng.uniform(-5.0, 5.0, batch)
    t = rng.uniform(0.0, 45.0, batch)
    member = rng.integers(0, n_models, batch)
    groups = [np.flatnonzero(member == u) for u in range(n_models)]

    def dispatch():
        out = np.empty(batch)
        for u, idx in enumerate(groups):
            out[idx] = kernels[u].estimate_soc(v[idx], i[idx], t[idx])
        return out

    fused.estimate_soc(v, i, t, member)  # warm the buffers
    dispatch_us = _p50_us(dispatch, reps)
    fused_us = _p50_us(lambda: fused.estimate_soc(v, i, t, member), reps)
    diff = float(np.max(np.abs(fused.estimate_soc(v, i, t, member) - dispatch())))
    return {
        "fused_models": n_models,
        "fused_batch": batch,
        "dispatch_rows_per_s": batch / (dispatch_us * 1e-6),
        "mixed_model_rows_per_s": batch / (fused_us * 1e-6),
        "fused_speedup": dispatch_us / fused_us,
        "fused_diff": diff,
    }


def bench_monitor_overhead(model, reps: int) -> dict:
    """Single-row engine estimate p50: bare engine vs fully monitored.

    The monitor PR's acceptance budget is <10% on this path (metrics
    counters + physics-bounds checks per call); the ratio is reported
    in the JSON record as ``monitor_overhead``.
    """
    from repro.monitor import DriftMonitor, MetricsRegistry

    plain = FleetEngine(default_model=model)
    plain.register_cell("bench-cell")
    metrics = MetricsRegistry()
    monitored = FleetEngine(
        default_model=model, metrics=metrics, drift=DriftMonitor(metrics=metrics)
    )
    monitored.register_cell("bench-cell")
    ids = ["bench-cell"]
    plain.estimate(ids, 3.7, 1.0, 25.0)  # warm both kernels
    monitored.estimate(ids, 3.7, 1.0, 25.0)
    plain_us = _p50_us(lambda: plain.estimate(ids, 3.7, 1.0, 25.0), reps)
    monitored_us = _p50_us(lambda: monitored.estimate(ids, 3.7, 1.0, 25.0), reps)
    return {
        "engine_plain_p50_us": plain_us,
        "engine_monitored_p50_us": monitored_us,
        "monitor_overhead": monitored_us / plain_us,
    }


def bench_tracing_overhead(model, reps: int) -> dict:
    """Single-row engine estimate p50: bare engine vs traced request.

    The traced call is the worst case the tracing PR adds to the hot
    path: a sampled root span around the engine call, so every stage
    (engine + kernel spans) records.  The ratio is reported in the
    JSON record as ``tracing_overhead`` (budget <5% at the default 1%
    head-sampling rate; this measures a 1-in-100 sampled mix).
    """
    from repro.monitor import MetricsRegistry, SpanTracer

    plain = FleetEngine(default_model=model)
    plain.register_cell("bench-cell")
    traced = FleetEngine(default_model=model)
    traced.register_cell("bench-cell")
    tracer = SpanTracer(sample_rate=0.01, metrics=MetricsRegistry(), max_traces=64)
    ids = ["bench-cell"]

    def traced_call():
        with tracer.trace("bench.estimate"):
            traced.estimate(ids, 3.7, 1.0, 25.0)

    plain.estimate(ids, 3.7, 1.0, 25.0)  # warm both kernels
    traced_call()
    plain_us = _p50_us(lambda: plain.estimate(ids, 3.7, 1.0, 25.0), reps)
    traced_us = _p50_us(traced_call, reps)
    return {
        "engine_traced_p50_us": traced_us,
        "tracing_overhead": traced_us / plain_us,
    }


def bench_rollout(model, cells: int, step_s: float, seed: int) -> dict:
    """Fleet rollout through kernels vs the Tensor escape hatch."""
    fleet = generate_fleet(
        cells,
        seed=seed,
        ambient_temps_c=(25.0,),
        c_rates=(1.0, 2.0),
        protocols=("discharge",),
        max_time_s=1800.0,
    )
    assignments = fleet.assignments()
    tensor_engine = FleetEngine(default_model=model, use_kernel=False)
    t0 = time.perf_counter()
    tensor_results = tensor_engine.rollout_fleet(assignments, step_s=step_s)
    tensor_s = time.perf_counter() - t0
    kernel_engine = FleetEngine(default_model=model)
    t0 = time.perf_counter()
    kernel_results = kernel_engine.rollout_fleet(assignments, step_s=step_s)
    kernel_s = time.perf_counter() - t0
    diff = max(
        float(np.max(np.abs(kernel_results[cid].soc_pred - tensor_results[cid].soc_pred)))
        for cid, _ in assignments
    )
    steps_total = sum(len(r) - 1 for r in tensor_results.values())
    return {
        "rollout_cells": cells,
        "rollout_tensor_s": tensor_s,
        "rollout_kernel_s": kernel_s,
        "rollout_kernel_speedup": tensor_s / kernel_s,
        "rollout_diff": diff,
        "rollout_cell_steps_per_s": steps_total / kernel_s,
        "_results": kernel_results,
    }


def bench_wire(rollout_results: dict, batch: int, reps: int) -> dict:
    """Encode+decode round-trips: pickle frames vs v2 zero-copy frames."""
    rng = np.random.default_rng(1)
    ids = [f"cell-{k}" for k in range(batch)]
    cols = [rng.uniform(2.8, 4.2, batch), rng.uniform(-5, 5, batch), rng.uniform(0, 45, batch)]

    def pickle_estimate():
        buf = io.BytesIO()
        wire.write_pickle(buf, ("estimate", (ids, *cols), {"now_s": None}))
        buf.seek(0)
        return wire.read_frame(buf)

    def v2_estimate():
        buf = io.BytesIO()
        wire.write_v2(
            buf,
            "estimate",
            {"n": batch, "now_s": None},
            [wire.encode_str_list(ids), *cols],
        )
        buf.seek(0)
        frame = wire.read_frame(buf)
        return wire.decode_str_list(frame.arrays[0], batch), frame.arrays[1:]

    meta, arrays = wire.encode_rollout_results(rollout_results)

    def pickle_rollout():
        buf = io.BytesIO()
        wire.write_pickle(buf, ("ok", rollout_results))
        buf.seek(0)
        return wire.read_frame(buf)

    def v2_rollout():
        buf = io.BytesIO()
        wire.write_v2(buf, "ok", meta, arrays)
        buf.seek(0)
        frame = wire.read_frame(buf)
        return wire.decode_rollout_results(frame.meta, frame.arrays)

    est_pickle_us = _p50_us(pickle_estimate, reps)
    est_v2_us = _p50_us(v2_estimate, reps)
    roll_pickle_us = _p50_us(pickle_rollout, max(reps // 4, 50))
    roll_v2_us = _p50_us(v2_rollout, max(reps // 4, 50))
    return {
        "wire_batch": batch,
        "estimate_pickle_us": est_pickle_us,
        "estimate_frames_us": est_v2_us,
        "rollout_reply_pickle_us": roll_pickle_us,
        "rollout_reply_frames_us": roll_v2_us,
        "frames_speedup": roll_pickle_us / roll_v2_us,
    }


def run(reps: int, batch: int, cells: int, step_s: float, seed: int, fast: bool,
        json_out: str | None) -> int:
    """Run all four measurements; 0 on success."""
    model = TwoBranchSoCNet(rng=np.random.default_rng(seed))
    kernel = CompiledTwoBranchKernel(model)
    kernel.estimate_soc(3.7, 1.0, 25.0)  # warm the buffers

    single = bench_single_row(model, kernel, reps)
    batched = bench_batched(model, kernel, batch, max(reps // 10, 50))
    f32 = bench_float32(model, kernel, batch, max(reps // 10, 50))
    fused = bench_fused(batch, max(reps // 10, 50), seed)
    monitor = bench_monitor_overhead(model, max(reps // 2, 100))
    tracing = bench_tracing_overhead(model, max(reps // 2, 100))
    rollout = bench_rollout(model, cells, step_s, seed)
    wire_rec = bench_wire(rollout.pop("_results"), batch, max(reps // 10, 50))

    record = {
        "reps": reps,
        "batch": batch,
        "step_s": step_s,
        "seed": seed,
        "fast": fast,
        **single,
        **batched,
        **f32,
        **fused,
        **monitor,
        **tracing,
        **rollout,
        **wire_rec,
    }
    record["max_equiv_diff"] = max(record["single_row_diff"], record["batched_diff"], record["rollout_diff"])

    rows = [
        ["estimate x1 (Tensor)", single["tensor_p50_us"], 1e6 / single["tensor_p50_us"]],
        ["estimate x1 (kernel)", single["kernel_p50_us"], 1e6 / single["kernel_p50_us"]],
        [f"estimate x{batch} (Tensor)", batch * 1e6 / batched["tensor_rows_per_s"],
         batched["tensor_rows_per_s"]],
        [f"estimate x{batch} (kernel)", batch * 1e6 / batched["kernel_rows_per_s"],
         batched["kernel_rows_per_s"]],
    ]
    print(format_table(["path", "p50 [us]", "rows/s"], rows, float_digits=1))
    print(f"kernel speedup: {record['kernel_speedup']:.1f}x single-row, "
          f"{record['batched_speedup']:.1f}x at batch {batch}")
    print(f"float32 tier (batch {batch}): {f32['float32_rows_per_s']:,.0f} rows/s "
          f"-> {record['float32_speedup']:.2f}x vs float64; "
          f"deltas est {f32['float32_est_diff']:.2e} / pred {f32['float32_pred_diff']:.2e} "
          f"(budget 1e-6)")
    print(f"fused {fused['fused_models']}-model batch x{fused['fused_batch']}: "
          f"dispatch {fused['dispatch_rows_per_s']:,.0f} rows/s vs "
          f"fused {fused['mixed_model_rows_per_s']:,.0f} rows/s "
          f"-> {record['fused_speedup']:.2f}x (diff {fused['fused_diff']:.2e})")
    print(f"monitoring overhead: engine estimate x1 {monitor['engine_plain_p50_us']:.1f}us bare "
          f"vs {monitor['engine_monitored_p50_us']:.1f}us monitored "
          f"-> {(record['monitor_overhead'] - 1) * 100:+.1f}% (budget +10%)")
    print(f"tracing overhead: engine estimate x1 {tracing['engine_traced_p50_us']:.1f}us traced "
          f"(1% head-sampled root span) "
          f"-> {(record['tracing_overhead'] - 1) * 100:+.1f}% (budget +5%)")
    print(f"rollout_fleet ({cells} cells): Tensor {rollout['rollout_tensor_s']:.3f}s, "
          f"kernel {rollout['rollout_kernel_s']:.3f}s "
          f"-> {record['rollout_kernel_speedup']:.1f}x "
          f"({record['rollout_cell_steps_per_s']:,.0f} cell-steps/s)")
    print(f"wire (batch {batch}): estimate pickle {wire_rec['estimate_pickle_us']:.1f}us "
          f"vs frames {wire_rec['estimate_frames_us']:.1f}us; rollout reply "
          f"pickle {wire_rec['rollout_reply_pickle_us']:.0f}us vs frames "
          f"{wire_rec['rollout_reply_frames_us']:.0f}us "
          f"-> {record['frames_speedup']:.1f}x")
    print(f"max |kernel - Tensor| anywhere: {record['max_equiv_diff']:.2e}")

    if json_out:
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {json_out}")

    if record["max_equiv_diff"] > 1e-9:
        print(f"FAIL: kernel diverges from the Tensor path "
              f"({record['max_equiv_diff']:.3e} > 1e-9)")
        return 1
    if record["fused_diff"] > 1e-9:
        print(f"FAIL: fused chain diverges from per-model dispatch "
              f"({record['fused_diff']:.3e} > 1e-9)")
        return 1
    if max(record["float32_est_diff"], record["float32_pred_diff"]) > 1e-6:
        print(f"FAIL: float32 tier outside its documented budget "
              f"(est {record['float32_est_diff']:.3e} / pred {record['float32_pred_diff']:.3e} > 1e-6)")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--reps", type=int, default=5000,
                        help="single-row latency samples (p50 reported)")
    parser.add_argument("--batch", type=int, default=1024, help="batched-path rows per call")
    parser.add_argument("--cells", type=int, default=256, help="rollout fleet size")
    parser.add_argument("--step", type=float, default=60.0, help="rollout step (s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="CI smoke mode: fewer samples, smaller fleet")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write the timings to this JSON file")
    args = parser.parse_args(argv)
    if args.reps < 10 or args.batch < 1 or args.cells < 1:
        parser.error("--reps must be >= 10; --batch and --cells must be >= 1")
    if args.fast:
        if args.reps == 5000:
            args.reps = 2000
        if args.cells == 256:
            args.cells = 96
    return run(args.reps, args.batch, args.cells, args.step, args.seed, args.fast,
               args.json_out)


if __name__ == "__main__":
    sys.exit(main())
