"""Regenerate Fig. 3: SoC-prediction MAE on the Sandia campaign.

Paper artifact: six configurations (No-PINN, Physics-Only, PINN-120s,
PINN-240s, PINN-360s, PINN-All) evaluated at 120/240/360 s horizons.

Expected shape (EXP-F3 in DESIGN.md): every useful PINN beats No-PINN
off-horizon with the gap growing with horizon; PINN-All is best or
near-best everywhere.
"""

from repro.eval.experiments import run_fig3
from repro.eval.metrics import improvement_percent


def test_fig3_sandia(benchmark, budget):
    result = benchmark.pedantic(run_fig3, args=(budget,), kwargs={"quiet": False}, rounds=1, iterations=1)

    grid = result.mean_grid()
    benchmark.extra_info["mae_grid"] = {k: {f"{h:g}s": v for h, v in row.items()} for k, row in grid.items()}

    # --- the paper's headline claims, asserted on the regenerated data
    no_pinn = grid["No-PINN"]
    best_trained = {
        h: min(v for name, row in grid.items() if name not in ("No-PINN", "Physics-Only") for v in [row[h]])
        for h in result.test_horizons_s
    }
    # 1. No-PINN error grows with the horizon (trained only at 120 s)
    assert no_pinn[120.0] < no_pinn[240.0] < no_pinn[360.0]
    # 2. the best PINN beats No-PINN at every test horizon
    for h in result.test_horizons_s:
        assert best_trained[h] < no_pinn[h], f"no PINN beat No-PINN at {h}s"
    # 3. the improvement grows off-horizon (paper: 21-22%; band kept wide)
    gain_360 = improvement_percent(no_pinn[360.0], best_trained[360.0])
    assert gain_360 > 10.0
    # 4. PINN-All is within 20% of the best trained variant everywhere
    for h in result.test_horizons_s:
        assert grid["PINN-All"][h] <= best_trained[h] * 1.2
