"""Micro-benchmarks of the deployable components.

The paper's deployment claim is that one inference costs ~1k operations
and the whole model fits in 9 kB — cheap enough for a BMS/PMIC.  These
benchmarks measure the actual wall-clock of the pieces a BMS would run
(Branch 1 estimate, Branch 2 predict, EKF step, simulator step) so
regressions in the hot paths are visible.
"""

import numpy as np
import pytest

from repro.baselines import EKFSoCEstimator
from repro.battery import CellSimulator, SensorNoise, get_cell_spec
from repro.core import TwoBranchSoCNet


@pytest.fixture(scope="module")
def model():
    return TwoBranchSoCNet(rng=np.random.default_rng(0))


def test_branch1_single_estimate(benchmark, model):
    """One SoC estimation from one sensor reading (the BMS hot path)."""
    result = benchmark(model.estimate_soc, 3.7, 1.5, 25.0)
    assert 0.0 <= result[0] <= 1.5


def test_branch2_single_prediction(benchmark, model):
    """One future-SoC query (one autoregressive step)."""
    result = benchmark(model.predict_soc, 0.8, 3.0, 25.0, 30.0)
    assert np.isfinite(result[0])


def test_full_cascade_batch(benchmark, model):
    """A batch of 1000 cascade queries (planner-style what-if sweep)."""
    rng = np.random.default_rng(0)
    v = rng.uniform(3.0, 4.2, 1000)
    i = rng.uniform(-3.0, 9.0, 1000)
    t = rng.uniform(0.0, 40.0, 1000)
    out = benchmark(model.predict_from_sensors, v, i, t, i, t, np.full(1000, 30.0))
    assert out.shape == (1000,)


def test_ekf_step(benchmark):
    """One EKF predict/update cycle (the classic observer's hot path)."""
    ekf = EKFSoCEstimator(get_cell_spec("sandia-nmc"))
    out = benchmark(ekf.step, 3.7, 1.5, 1.0)
    assert 0.0 <= out <= 1.0


def test_simulator_throughput(benchmark):
    """1000 ECM+thermal steps (dataset-generation throughput)."""
    sim = CellSimulator(get_cell_spec("lg-hg2"), noise=SensorNoise.none(), rng=0)
    profile = np.random.default_rng(0).uniform(-3.0, 9.0, 1000)

    def run():
        sim.reset(0.9, 25.0)
        return sim.run_profile(profile, 0.1, 25.0, stop_at_cutoff=False)

    result = benchmark(run)
    assert len(result) == 1000
