"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures.  By
default a reduced ("fast") budget keeps the whole suite in the
minutes range; set ``REPRO_FULL=1`` to run the paper-parity protocol
(full campaigns, 5 seeds — tens of minutes).

The regenerated rows/series are printed to stdout (run pytest with
``-s`` to see them) and attached to the benchmark's ``extra_info``.
"""

import os

import pytest

from repro.eval.experiments import fast_budget, full_budget


@pytest.fixture(scope="session")
def budget():
    """The experiment budget selected via the REPRO_FULL env var."""
    return full_budget() if os.environ.get("REPRO_FULL") == "1" else fast_budget()
