"""Regenerate Fig. 4: SoC-prediction MAE on the LG campaign.

Paper artifact: six configurations evaluated at 30/50/70 s horizons on
the four driving-pattern cycles plus the held-out mixed cycle at 25 C.

Expected shape (EXP-F4): No-PINN degrades sharply off-horizon (paper:
it loses 69%/82% to the horizon-matched PINNs at 50/70 s); PINN-All is
best or near-best at every horizon.
"""

from repro.eval.experiments import run_fig4
from repro.eval.metrics import improvement_percent


def test_fig4_lg(benchmark, budget):
    result = benchmark.pedantic(run_fig4, args=(budget,), kwargs={"quiet": False}, rounds=1, iterations=1)

    grid = result.mean_grid()
    benchmark.extra_info["mae_grid"] = {k: {f"{h:g}s": v for h, v in row.items()} for k, row in grid.items()}

    no_pinn = grid["No-PINN"]
    # 1. No-PINN error grows with horizon (trained at 30 s only)
    assert no_pinn[30.0] < no_pinn[50.0] < no_pinn[70.0]
    # 2. horizon-matched PINNs recover most of the loss (paper: 69%/82%)
    assert improvement_percent(no_pinn[50.0], grid["PINN-50s"][50.0]) > 25.0
    assert improvement_percent(no_pinn[70.0], grid["PINN-70s"][70.0]) > 40.0
    # 3. PINN-All approaches the best config at every horizon (paper:
    #    second-best overall, within ~2% of the winner)
    for h in result.test_horizons_s:
        best = min(row[h] for name, row in grid.items() if name != "Physics-Only")
        assert grid["PINN-All"][h] <= best * 1.25
    # 4. at the native horizon everything data-driven is comparable
    assert grid["PINN-All"][30.0] <= no_pinn[30.0] * 1.15
