"""Regenerate Fig. 5: autoregressive full-discharge rollouts at 25 C.

Paper artifact: each configuration chains Branch 2 along the four
driving cycles plus the held-out mixed cycle, using voltage only at the
first timestamp; the paper reports the final-SoC error (ground truth
ends at ~0).

Expected shape (EXP-F5): rollout errors are an order of magnitude
larger than single-step ones (error accumulation); Physics-Only
overestimates SoC — Eq. 1 with the datasheet capacity under-counts the
drained charge — while preserving the discharge shape.
"""

import numpy as np

from repro.eval.experiments import run_fig4, run_fig5


def test_fig5_rollouts(benchmark, budget):
    fig4 = run_fig4(budget, quiet=True, keep_models=True)

    def regenerate():
        return run_fig5(budget, quiet=False, fig4_result=fig4)

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    configs = list(next(iter(results.values())))
    avg_final = {
        c: float(np.mean([per_cycle[c]["final_error"] for per_cycle in results.values()]))
        for c in configs
    }
    benchmark.extra_info["avg_final_error"] = avg_final

    # 1. Physics-Only accumulates drift: clearly worse than the best
    #    trained model's rollout (paper: the worst trajectory family)
    best_trained = min(v for k, v in avg_final.items() if k != "Physics-Only")
    assert avg_final["Physics-Only"] > best_trained
    # 2. Physics-Only *overestimates* (predictions end above the truth)
    for per_cycle in results.values():
        assert per_cycle["Physics-Only"]["final_error"] > 0.0
    # 3. rollout is much harder than single-step prediction: final errors
    #    far exceed the single-step MAE of the same configs (paper Sec. V-D)
    single_step_best = min(fig4.variants[c].mean(30.0) for c in configs if c != "Physics-Only")
    assert best_trained > 2.0 * single_step_best
    # 4. every rollout still lands within the physical ballpark
    for per_cycle in results.values():
        for c in configs:
            assert per_cycle[c]["final_error"] < 0.6
