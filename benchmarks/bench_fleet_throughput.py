"""Fleet-serving throughput: per-cell Python loop vs batched engine.

Rolls a synthetic multi-chemistry fleet (``repro.serve.fleet_sim``)
through the autoregressive paths:

- **loop** — :func:`repro.core.rollout.model_rollout` once per cell,
  the pre-serving-layer behaviour (one Python-level Branch 2 call per
  cell per step);
- **batched** — :meth:`repro.serve.FleetEngine.rollout_fleet`, one
  matrix op advancing every active cell per step;
- **sharded** (``--shards N``) — the same fleet fanned across a
  :class:`repro.serve.ShardedFleet`.

All paths must agree to 1e-9 on every trajectory (they share the
:func:`repro.core.rollout.cycle_windows` workloads); the report is
cells/sec and cell-steps/sec for each, plus the speedup.  At the
default fleet size of 1,000 the batched path is expected to be >=20x
faster.

``--json OUT`` writes the numbers as a machine-readable record; CI
uploads it as the ``BENCH_fleet.json`` artifact and
``benchmarks/check_bench_regression.py`` gates it against the
committed baseline.

Run directly (unlike the pytest-benchmark figures in this directory,
fleet serving has no paper artifact to regenerate)::

    PYTHONPATH=src python benchmarks/bench_fleet_throughput.py [--fast] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core import TwoBranchSoCNet, model_rollout
from repro.eval.reporting import format_table
from repro.serve import FleetEngine, ShardedFleet, generate_fleet


def run(
    cells: int,
    step_s: float,
    seed: int,
    fast: bool,
    min_speedup: float,
    shards: int = 0,
    json_out: str | None = None,
) -> int:
    """Time the rollout paths over one generated fleet; 0 on success."""
    # an untrained (but deterministic) model: forward cost is identical
    # to a trained one, and throughput is all this benchmark measures
    model = TwoBranchSoCNet(rng=np.random.default_rng(seed))
    sim_kwargs = dict(seed=seed, protocols=("discharge",))
    if fast:
        sim_kwargs.update(ambient_temps_c=(25.0,), c_rates=(1.0, 2.0), max_time_s=1800.0)
    t0 = time.perf_counter()
    fleet = generate_fleet(cells, **sim_kwargs)
    gen_s = time.perf_counter() - t0
    assignments = fleet.assignments()
    chem = ", ".join(f"{c}={n}" for c, n in sorted(fleet.chemistries().items()))
    print(f"fleet: {len(fleet)} cells ({chem}), {fleet.n_conditions()} duty cycles "
          f"[generated in {gen_s:.2f}s]")

    t0 = time.perf_counter()
    loop_results = {cid: model_rollout(model, cycle, step_s) for cid, cycle in assignments}
    loop_s = time.perf_counter() - t0

    engine = FleetEngine(default_model=model)
    t0 = time.perf_counter()
    batched_results = engine.rollout_fleet(assignments, step_s=step_s)
    batched_s = time.perf_counter() - t0

    sharded_s = None
    sharded_results = None
    if shards:
        sharded = ShardedFleet(shards, default_model=model)
        t0 = time.perf_counter()
        sharded_results = sharded.rollout_fleet(assignments, step_s=step_s)
        sharded_s = time.perf_counter() - t0

    worst = 0.0
    for cid, _ in assignments:
        ref, got = loop_results[cid], batched_results[cid]
        if len(ref) != len(got):
            print(f"FAIL: {cid} trajectory length mismatch ({len(ref)} vs {len(got)})")
            return 1
        worst = max(worst, float(np.max(np.abs(ref.soc_pred - got.soc_pred))))
        if sharded_results is not None:
            worst = max(
                worst, float(np.max(np.abs(ref.soc_pred - sharded_results[cid].soc_pred)))
            )
    if worst > 1e-9:
        print(f"FAIL: rollout paths diverge (max |diff| {worst:.3e} > 1e-9)")
        return 1

    steps_total = sum(len(r) - 1 for r in loop_results.values())
    speedup = loop_s / batched_s
    rows = [
        ["loop (per-cell)", loop_s, cells / loop_s, steps_total / loop_s],
        ["batched (fleet)", batched_s, cells / batched_s, steps_total / batched_s],
    ]
    if sharded_s is not None:
        rows.append(
            [f"sharded ({shards} workers)", sharded_s, cells / sharded_s, steps_total / sharded_s]
        )
    print(format_table(["path", "wall [s]", "cells/s", "cell-steps/s"], rows, float_digits=3))
    print(f"speedup: {speedup:.1f}x over {steps_total} cell-steps "
          f"(max trajectory |diff| {worst:.2e})")

    if json_out:
        record = {
            "cells": cells,
            "step_s": step_s,
            "seed": seed,
            "fast": fast,
            "shards": shards,
            "steps_total": steps_total,
            "loop_s": loop_s,
            "batched_s": batched_s,
            "sharded_s": sharded_s,
            "speedup": speedup,
            "sharded_speedup": None if sharded_s is None else loop_s / sharded_s,
            "cells_per_s_batched": cells / batched_s,
            "cell_steps_per_s_batched": steps_total / batched_s,
            "max_traj_diff": worst,
        }
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {json_out}")

    if min_speedup and speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below required {min_speedup:g}x")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--cells", type=int, default=1000, help="fleet size")
    parser.add_argument("--step", type=float, default=60.0, help="rollout step (s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="CI smoke mode: small fleet, light simulation")
    parser.add_argument("--shards", type=int, default=0,
                        help="also time a ShardedFleet with this many workers")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write the timings to this JSON file")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail below this speedup (default: 20 at full size, off with --fast)")
    args = parser.parse_args(argv)
    if args.cells < 1:
        parser.error("--cells must be at least 1")
    if args.shards < 0:
        parser.error("--shards cannot be negative")
    if args.fast and args.cells == 1000:
        args.cells = 128
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 0.0 if args.fast else 20.0
    return run(args.cells, args.step, args.seed, args.fast, min_speedup,
               shards=args.shards, json_out=args.json_out)


if __name__ == "__main__":
    sys.exit(main())
