"""Fleet-serving throughput: per-cell Python loop vs batched engine.

Rolls a synthetic multi-chemistry fleet (``repro.serve.fleet_sim``)
through both autoregressive paths:

- **loop** — :func:`repro.core.rollout.model_rollout` once per cell,
  the pre-serving-layer behaviour (one Python-level Branch 2 call per
  cell per step);
- **batched** — :meth:`repro.serve.FleetEngine.rollout_fleet`, one
  matrix op advancing every active cell per step.

The two paths must agree to 1e-9 on every trajectory (they share the
:func:`repro.core.rollout.cycle_windows` workloads); the report is
cells/sec and cell-steps/sec for each, plus the speedup.  At the
default fleet size of 1,000 the batched path is expected to be >=20x
faster.

Run directly (unlike the pytest-benchmark figures in this directory,
fleet serving has no paper artifact to regenerate)::

    PYTHONPATH=src python benchmarks/bench_fleet_throughput.py [--fast]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core import TwoBranchSoCNet, model_rollout
from repro.eval.reporting import format_table
from repro.serve import FleetEngine, generate_fleet


def run(cells: int, step_s: float, seed: int, fast: bool, min_speedup: float) -> int:
    """Time both rollout paths over one generated fleet; 0 on success."""
    # an untrained (but deterministic) model: forward cost is identical
    # to a trained one, and throughput is all this benchmark measures
    model = TwoBranchSoCNet(rng=np.random.default_rng(seed))
    sim_kwargs = dict(seed=seed, protocols=("discharge",))
    if fast:
        sim_kwargs.update(ambient_temps_c=(25.0,), c_rates=(1.0, 2.0), max_time_s=1800.0)
    t0 = time.perf_counter()
    fleet = generate_fleet(cells, **sim_kwargs)
    gen_s = time.perf_counter() - t0
    assignments = fleet.assignments()
    chem = ", ".join(f"{c}={n}" for c, n in sorted(fleet.chemistries().items()))
    print(f"fleet: {len(fleet)} cells ({chem}), {fleet.n_conditions()} duty cycles "
          f"[generated in {gen_s:.2f}s]")

    t0 = time.perf_counter()
    loop_results = {cid: model_rollout(model, cycle, step_s) for cid, cycle in assignments}
    loop_s = time.perf_counter() - t0

    engine = FleetEngine(default_model=model)
    t0 = time.perf_counter()
    batched_results = engine.rollout_fleet(assignments, step_s=step_s)
    batched_s = time.perf_counter() - t0

    worst = 0.0
    for cid, _ in assignments:
        ref, got = loop_results[cid], batched_results[cid]
        if len(ref) != len(got):
            print(f"FAIL: {cid} trajectory length mismatch ({len(ref)} vs {len(got)})")
            return 1
        worst = max(worst, float(np.max(np.abs(ref.soc_pred - got.soc_pred))))
    if worst > 1e-9:
        print(f"FAIL: loop/batched trajectories diverge (max |diff| {worst:.3e} > 1e-9)")
        return 1

    steps_total = sum(len(r) - 1 for r in loop_results.values())
    speedup = loop_s / batched_s
    print(format_table(
        ["path", "wall [s]", "cells/s", "cell-steps/s"],
        [
            ["loop (per-cell)", loop_s, cells / loop_s, steps_total / loop_s],
            ["batched (fleet)", batched_s, cells / batched_s, steps_total / batched_s],
        ],
        float_digits=3,
    ))
    print(f"speedup: {speedup:.1f}x over {steps_total} cell-steps "
          f"(max trajectory |diff| {worst:.2e})")
    if min_speedup and speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below required {min_speedup:g}x")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--cells", type=int, default=1000, help="fleet size")
    parser.add_argument("--step", type=float, default=60.0, help="rollout step (s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="CI smoke mode: small fleet, light simulation")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail below this speedup (default: 20 at full size, off with --fast)")
    args = parser.parse_args(argv)
    if args.cells < 1:
        parser.error("--cells must be at least 1")
    if args.fast and args.cells == 1000:
        args.cells = 128
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 0.0 if args.fast else 20.0
    return run(args.cells, args.step, args.seed, args.fast, min_speedup)


if __name__ == "__main__":
    sys.exit(main())
