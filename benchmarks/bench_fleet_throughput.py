"""Fleet-serving throughput: per-cell Python loop vs batched engine.

Rolls a synthetic multi-chemistry fleet (``repro.serve.fleet_sim``)
through the autoregressive paths:

- **loop** — :func:`repro.core.rollout.model_rollout` once per cell,
  the pre-serving-layer behaviour (one Python-level Branch 2 call per
  cell per step);
- **batched** — :meth:`repro.serve.FleetEngine.rollout_fleet`, one
  matrix op advancing every active cell per step;
- **sharded** (``--shards N``) — the same fleet fanned across a
  :class:`repro.serve.ShardedFleet`;
- **process** (``--workers N``) — the same fleet fanned across
  :class:`repro.serve.ProcessShardWorker` subprocesses (real OS
  processes behind the sharded-fleet interface);
- **shm** (``--workers N``) — the same subprocess workers with bulk
  payloads riding ``shm://`` shared-memory slab rings instead of the
  pipe.  A payload micro-bench also reports ``shm_payload_ratio``:
  bulk-array round-trip p50 copied inline through the pipe vs riding
  the ring (gated in CI against the committed baseline).

All paths must agree to 1e-9 on every trajectory (they share the
:func:`repro.core.rollout.cycle_windows` workloads); the report is
cells/sec and cell-steps/sec for each, plus the speedup.  At the
default fleet size of 1,000 the batched path is expected to be >=20x
faster.

``--gateway R`` additionally measures the asyncio
:class:`repro.serve.SocGateway`'s sustained request throughput: ``R``
single-cell requests from ``--gateway-clients`` concurrent closed-loop
clients, against the **direct** path (one engine call per request —
what serving without the gateway's micro-batching costs).  The gated
metric is their machine-calibrated ratio ``gateway_ratio``
(``--gateway-json`` writes the record CI compares to
``benchmarks/baselines/BENCH_gateway_baseline.json``).

``--json OUT`` writes the rollout numbers as a machine-readable
record; CI uploads it as the ``BENCH_fleet.json`` artifact and
``benchmarks/check_bench_regression.py`` gates it against the
committed baseline.

Run directly (unlike the pytest-benchmark figures in this directory,
fleet serving has no paper artifact to regenerate)::

    PYTHONPATH=src python benchmarks/bench_fleet_throughput.py [--fast] [--json OUT]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core import TwoBranchSoCNet, model_rollout
from repro.eval.reporting import format_table
from repro.serve import (
    FleetEngine,
    ShardedFleet,
    SocGateway,
    WorkerSpec,
    generate_fleet,
)


def bench_gateway(
    model,
    cells: int,
    requests: int,
    clients: int,
    seed: int,
    max_batch: int = 64,
    max_delay_s: float = 0.002,
    json_out: str | None = None,
) -> dict:
    """Gateway sustained req/s vs the direct one-call-per-request path."""
    import asyncio

    fleet = generate_fleet(
        cells,
        seed=seed,
        ambient_temps_c=(25.0,),
        c_rates=(1.0, 2.0),
        protocols=("discharge",),
        max_time_s=1800.0,
    )
    members = list(fleet.members)
    engine = FleetEngine(default_model=model)
    for m in members:
        engine.register_cell(m.cell_id, chemistry=m.chemistry)

    def readings(j: int):
        m = members[j % len(members)]
        data = m.cycle.data
        idx = (j * 13) % len(m.cycle)
        return m.cell_id, float(data.voltage[idx]), float(data.current[idx]), float(data.temp_c[idx])

    # direct path: the pre-gateway behaviour, one engine call per request
    t0 = time.perf_counter()
    for j in range(requests):
        cell_id, v, i, t = readings(j)
        engine.estimate([cell_id], v, i, t)
    direct_s = time.perf_counter() - t0

    per_client = max(1, requests // clients)

    async def client(gateway: SocGateway, k: int) -> int:
        bad = 0
        for j in range(per_client):
            cell_id, v, i, t = readings(k * per_client + j)
            completion = await gateway.estimate(cell_id, v, i, t)
            bad += not completion.ok
        return bad

    async def drive() -> tuple[SocGateway, int, float]:
        gateway = SocGateway(
            engine, max_batch=max_batch, max_delay_s=max_delay_s, max_in_flight=4 * clients
        )
        async with gateway:
            t0 = time.perf_counter()
            bad = sum(await asyncio.gather(*(client(gateway, k) for k in range(clients))))
            elapsed = time.perf_counter() - t0
        return gateway, bad, elapsed

    gateway, errors, gateway_s = asyncio.run(drive())
    served = per_client * clients
    stats = gateway.stats_dict()["estimate"]
    record = {
        "cells": cells,
        "requests": requests,
        "clients": clients,
        "max_batch": max_batch,
        "max_delay_s": max_delay_s,
        "seed": seed,
        "gateway_req_s": served / gateway_s,
        "direct_req_s": requests / direct_s,
        "gateway_ratio": (served / gateway_s) / (requests / direct_s),
        "errors": errors,
        "shed": stats["shed"],
        "p50_ms": stats["p50_ms"],
        "p95_ms": stats["p95_ms"],
        "p99_ms": stats["p99_ms"],
    }
    print(
        f"gateway: {served} requests from {clients} clients in {gateway_s:.3f}s "
        f"-> {record['gateway_req_s']:,.0f} req/s "
        f"(direct {record['direct_req_s']:,.0f} req/s, "
        f"ratio {record['gateway_ratio']:.1f}x, errors={errors}, shed={stats['shed']}); "
        f"p50/p95/p99 = {stats['p50_ms']:.1f}/{stats['p95_ms']:.1f}/{stats['p99_ms']:.1f} ms"
    )
    if json_out:
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {json_out}")
    return record


def bench_shm_payload(payload_mb: float = 2.0, reps: int = 40) -> dict:
    """Bulk-payload round-trip p50: inline pipe frames vs shm ring refs.

    An echo peer (thread) bounces one ``payload_mb`` float64 array back
    over a pipe pair — the worker wire path minus engine compute — once
    with inline v2 frames (the payload is copied through the pipe both
    ways) and once riding a shared-memory slab ring (the pipe then
    carries only offsets).  The ratio is the pure data-movement win the
    ``shm://`` scheme buys on bulk estimate/rollout payloads.
    """
    import os
    import threading

    from repro.serve.transport import PipeTransport, ShmRing, shm_ring_dir

    n = int(payload_mb * 1024 * 1024) // 8
    payload = np.arange(n, dtype=np.float64)
    p50 = {}
    for scheme in ("pipe", "shm"):
        r1, w1 = os.pipe()
        r2, w2 = os.pipe()
        client = PipeTransport(os.fdopen(w1, "wb"), os.fdopen(r2, "rb"), peer="bench-client")
        server = PipeTransport(os.fdopen(w2, "wb"), os.fdopen(r1, "rb"), peer="bench-server")
        rings = []
        if scheme == "shm":
            base = os.path.join(shm_ring_dir(), f"repro-soc-bench-{os.getpid()}")
            for suffix in ("-req", "-rep"):
                rings.append(ShmRing(base + suffix, slots=8, slab_bytes=1024 * 1024, create=True))
            client.attach_shm(tx=rings[0], rx=rings[1])
            server.attach_shm(tx=rings[1], rx=rings[0])

        def echo():
            while True:
                frame = server.recv_frame()
                if frame is None or frame.kind == "stop":
                    return
                server.send_v2("ok", frame.meta, frame.arrays)

        thread = threading.Thread(target=echo, daemon=True)
        thread.start()
        samples = []
        for k in range(reps + 3):
            t0 = time.perf_counter()
            client.send_v2("payload", {"k": k}, [payload])
            client.recv_frame()
            if k >= 3:  # skip warm-up (page faults, buffer growth)
                samples.append(time.perf_counter() - t0)
        client.send_v2("stop", {}, [])
        thread.join(timeout=5.0)
        client.close()
        server.close()
        for ring in rings:
            ring.close(unlink=True)
        p50[scheme] = float(np.median(samples)) * 1e6
    return {
        "shm_payload_mb": payload_mb,
        "pipe_payload_p50_us": p50["pipe"],
        "shm_payload_p50_us": p50["shm"],
        "shm_payload_ratio": p50["pipe"] / p50["shm"],
    }


def run(
    cells: int,
    step_s: float,
    seed: int,
    fast: bool,
    min_speedup: float,
    shards: int = 0,
    workers: int = 0,
    json_out: str | None = None,
) -> int:
    """Time the rollout paths over one generated fleet; 0 on success."""
    # an untrained (but deterministic) model: forward cost is identical
    # to a trained one, and throughput is all this benchmark measures
    model = TwoBranchSoCNet(rng=np.random.default_rng(seed))
    sim_kwargs = dict(seed=seed, protocols=("discharge",))
    if fast:
        sim_kwargs.update(ambient_temps_c=(25.0,), c_rates=(1.0, 2.0), max_time_s=1800.0)
    t0 = time.perf_counter()
    fleet = generate_fleet(cells, **sim_kwargs)
    gen_s = time.perf_counter() - t0
    assignments = fleet.assignments()
    chem = ", ".join(f"{c}={n}" for c, n in sorted(fleet.chemistries().items()))
    print(f"fleet: {len(fleet)} cells ({chem}), {fleet.n_conditions()} duty cycles "
          f"[generated in {gen_s:.2f}s]")

    t0 = time.perf_counter()
    loop_results = {cid: model_rollout(model, cycle, step_s) for cid, cycle in assignments}
    loop_s = time.perf_counter() - t0

    engine = FleetEngine(default_model=model)
    t0 = time.perf_counter()
    batched_results = engine.rollout_fleet(assignments, step_s=step_s)
    batched_s = time.perf_counter() - t0

    sharded_s = None
    sharded_results = None
    if shards:
        sharded = ShardedFleet(shards, spec=WorkerSpec(model=model))
        t0 = time.perf_counter()
        sharded_results = sharded.rollout_fleet(assignments, step_s=step_s)
        sharded_s = time.perf_counter() - t0

    process_s = None
    process_results = None
    shm_s = None
    shm_results = None
    payload = None
    if workers:
        process_fleet = ShardedFleet(
            workers, spec=WorkerSpec(url="pipe://", model=model)
        )
        t0 = time.perf_counter()
        process_results = process_fleet.rollout_fleet(assignments, step_s=step_s)
        process_s = time.perf_counter() - t0
        process_fleet.close()

        shm_fleet = ShardedFleet(
            workers, spec=WorkerSpec(url="shm://", model=model)
        )
        t0 = time.perf_counter()
        shm_results = shm_fleet.rollout_fleet(assignments, step_s=step_s)
        shm_s = time.perf_counter() - t0
        shm_fleet.close()

        payload = bench_shm_payload()

    worst = 0.0
    for cid, _ in assignments:
        ref, got = loop_results[cid], batched_results[cid]
        if len(ref) != len(got):
            print(f"FAIL: {cid} trajectory length mismatch ({len(ref)} vs {len(got)})")
            return 1
        worst = max(worst, float(np.max(np.abs(ref.soc_pred - got.soc_pred))))
        if sharded_results is not None:
            worst = max(
                worst, float(np.max(np.abs(ref.soc_pred - sharded_results[cid].soc_pred)))
            )
        if process_results is not None:
            worst = max(
                worst, float(np.max(np.abs(ref.soc_pred - process_results[cid].soc_pred)))
            )
        if shm_results is not None:
            worst = max(
                worst, float(np.max(np.abs(ref.soc_pred - shm_results[cid].soc_pred)))
            )
    if worst > 1e-9:
        print(f"FAIL: rollout paths diverge (max |diff| {worst:.3e} > 1e-9)")
        return 1

    steps_total = sum(len(r) - 1 for r in loop_results.values())
    speedup = loop_s / batched_s
    rows = [
        ["loop (per-cell)", loop_s, cells / loop_s, steps_total / loop_s],
        ["batched (fleet)", batched_s, cells / batched_s, steps_total / batched_s],
    ]
    if sharded_s is not None:
        rows.append(
            [f"sharded ({shards} workers)", sharded_s, cells / sharded_s, steps_total / sharded_s]
        )
    if process_s is not None:
        rows.append(
            [f"process ({workers} workers)", process_s, cells / process_s, steps_total / process_s]
        )
    if shm_s is not None:
        rows.append(
            [f"shm ({workers} workers)", shm_s, cells / shm_s, steps_total / shm_s]
        )
    print(format_table(["path", "wall [s]", "cells/s", "cell-steps/s"], rows, float_digits=3))
    print(f"speedup: {speedup:.1f}x over {steps_total} cell-steps "
          f"(max trajectory |diff| {worst:.2e})")
    if payload is not None:
        print(f"shm payload ({payload['shm_payload_mb']:g} MB round-trip): "
              f"pipe {payload['pipe_payload_p50_us']:.0f}us vs "
              f"shm {payload['shm_payload_p50_us']:.0f}us p50 "
              f"-> {payload['shm_payload_ratio']:.2f}x")

    if json_out:
        record = {
            "cells": cells,
            "step_s": step_s,
            "seed": seed,
            "fast": fast,
            "shards": shards,
            "workers": workers,
            "steps_total": steps_total,
            "loop_s": loop_s,
            "batched_s": batched_s,
            "sharded_s": sharded_s,
            "process_s": process_s,
            "shm_s": shm_s,
            "speedup": speedup,
            "sharded_speedup": None if sharded_s is None else loop_s / sharded_s,
            "process_speedup": None if process_s is None else loop_s / process_s,
            "shm_speedup": None if shm_s is None else loop_s / shm_s,
            **(payload or {}),
            "cells_per_s_batched": cells / batched_s,
            "cell_steps_per_s_batched": steps_total / batched_s,
            "max_traj_diff": worst,
        }
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {json_out}")

    if min_speedup and speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below required {min_speedup:g}x")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--cells", type=int, default=1000, help="fleet size")
    parser.add_argument("--step", type=float, default=60.0, help="rollout step (s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="CI smoke mode: small fleet, light simulation")
    parser.add_argument("--shards", type=int, default=0,
                        help="also time a ShardedFleet with this many in-process workers")
    parser.add_argument("--workers", type=int, default=0,
                        help="also time a ShardedFleet over this many subprocess workers")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write the timings to this JSON file")
    parser.add_argument("--gateway", type=int, default=0,
                        help="also bench the async gateway with this many requests (0 = off)")
    parser.add_argument("--gateway-clients", type=int, default=64,
                        help="concurrent closed-loop gateway clients")
    parser.add_argument("--gateway-cells", type=int, default=96,
                        help="fleet size for the gateway bench")
    parser.add_argument("--gateway-json", default=None,
                        help="write the gateway record to this JSON file")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail below this speedup (default: 20 at full size, off with --fast)")
    args = parser.parse_args(argv)
    if args.cells < 1:
        parser.error("--cells must be at least 1")
    if args.shards < 0:
        parser.error("--shards cannot be negative")
    if args.workers < 0:
        parser.error("--workers cannot be negative")
    if args.fast and args.cells == 1000:
        args.cells = 128
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 0.0 if args.fast else 20.0
    rc = run(args.cells, args.step, args.seed, args.fast, min_speedup,
             shards=args.shards, workers=args.workers, json_out=args.json_out)
    if rc == 0 and args.gateway:
        model = TwoBranchSoCNet(rng=np.random.default_rng(args.seed))
        record = bench_gateway(model, args.gateway_cells, args.gateway, args.gateway_clients,
                               args.seed, json_out=args.gateway_json)
        if record["errors"] or record["shed"]:
            print(f"FAIL: gateway bench saw errors={record['errors']} shed={record['shed']}")
            rc = 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
