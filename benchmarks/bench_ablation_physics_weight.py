"""Ablation EXP-A2: weight of the physics term in the Eq. 2 loss.

The paper uses an unweighted sum of the data MAE and the physics MAE.
This ablation sweeps the physics weight to show the regularization
trade-off: 0 recovers No-PINN (poor off-horizon), very large weights
drown the data term (Eq. 1's capacity bias leaks in), and weights
around 1 balance the two — supporting the paper's unweighted choice.
"""

import dataclasses

import numpy as np

from repro.core import PhysicsConfig, TrainConfig, train_two_branch
from repro.datasets import make_estimation_samples, make_prediction_samples
from repro.datasets.sandia import cached_sandia
from repro.eval.metrics import mae

WEIGHTS = (0.0, 0.25, 1.0, 4.0)


def test_ablation_physics_weight(benchmark, budget):
    data = cached_sandia(dataclasses.replace(budget.sandia, cells=("sandia-nmc",)))
    est = make_estimation_samples(data.train())
    pred = make_prediction_samples(data.train(), horizon_s=120.0)
    tests = {h: make_prediction_samples(data.test(), horizon_s=h) for h in (120.0, 360.0)}
    cfg = TrainConfig(epochs_branch1=120, epochs_branch2=120)

    def run():
        grid = {}
        for weight in WEIGHTS:
            physics = PhysicsConfig(horizons_s=(120.0, 240.0, 360.0), weight=weight)
            per_h = {h: [] for h in tests}
            for seed in budget.seeds:
                model, _ = train_two_branch(est, pred, train_config=cfg, physics=physics, seed=seed)
                for h, samples in tests.items():
                    per_h[h].append(mae(model.predict_samples(samples), samples.soc_target))
            grid[weight] = {h: float(np.mean(v)) for h, v in per_h.items()}
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n== EXP-A2: physics-loss weight sweep ==")
    for weight, per_h in grid.items():
        print(f"  weight={weight:<5g} " + "  ".join(f"@{h:g}s {v:.4f}" for h, v in per_h.items()))
    benchmark.extra_info["grid"] = {f"{w:g}": {f"{h:g}": v for h, v in r.items()} for w, r in grid.items()}

    # any nonzero physics weight must improve the unseen 360 s horizon
    assert min(grid[w][360.0] for w in WEIGHTS if w > 0) < grid[0.0][360.0]
