"""Perf lab front end: run a declarative sweep, then fit the capacity model.

Stage 1 — ``run``: expand a run table (JSON or YAML; see
``benchmarks/tables/``) into its cartesian sweep × repetitions and
execute every cell with open-loop load generation, one JSON artifact
per run::

    PYTHONPATH=src python benchmarks/perf_lab.py run \\
        --table benchmarks/tables/perf_lab_smoke.json --out /tmp/lab

Stage 2 — ``analyze``: aggregate repetitions (mean ± 95% CI), fit the
knee of every latency-vs-offered-load curve at the p99 SLO, and write
``summary.json`` + ``BENCH_capacity.json`` (cells-per-host and
req/s-per-worker, with assumptions recorded)::

    PYTHONPATH=src python benchmarks/perf_lab.py analyze --out /tmp/lab \\
        [--slo-p99-ms 50] [--per-cell-req-s 0.0333]

The SLO and per-cell rate default to what the table pinned in its
``defaults`` section (carried through ``manifest.json``), so re-running
``analyze`` reproduces the published numbers without re-stating them.

All the machinery lives in :mod:`repro.perflab`; this file is the
benchmarks-directory entry point (mirroring the other ``bench_*``
scripts) and is what CI's perf-lab lanes invoke.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)
    run_p = sub.add_parser("run", help="execute every cell of a run table")
    run_p.add_argument("--table", required=True, help="run table (JSON or YAML)")
    run_p.add_argument("--out", required=True, help="artifact directory (created)")
    ana_p = sub.add_parser("analyze", help="aggregate artifacts into the capacity model")
    ana_p.add_argument("--out", required=True, help="artifact directory from a run")
    ana_p.add_argument("--slo-p99-ms", type=float, default=None, help="p99 SLO (default: table-pinned)")
    ana_p.add_argument(
        "--per-cell-req-s", type=float, default=None, help="assumed per-cell req/s (default: table-pinned)"
    )
    args = parser.parse_args(argv)

    from repro.perflab import analyze, load_table, run_table

    if args.command == "run":
        manifest = run_table(load_table(args.table), args.out)
        failed = [r["run_id"] for r in manifest["runs"] if not r["ok"]]
        if failed:
            print(f"FAILED runs: {', '.join(failed)}")
            return 1
        return 0
    summary = analyze(args.out, slo_p99_ms=args.slo_p99_ms, per_cell_req_s=args.per_cell_req_s)
    capacity = summary["capacity"]
    print(json.dumps(capacity["assumptions"], indent=2))
    for entry in capacity["curves"]:
        knee = entry["knee"]
        rate = knee["knee_rate"]
        print(
            f"{entry['topology']}-w{entry['workers']}-c{entry['cells']}-b{entry['max_batch']}"
            f"-{entry['shape']}: knee {rate if rate is None else format(rate, '.0f')} req/s "
            f"({knee['status']}), req/s-per-worker "
            f"{entry['req_s_per_worker'] and format(entry['req_s_per_worker'], '.0f')}, "
            f"cells-per-host {entry['cells_per_host'] and format(entry['cells_per_host'], '.0f')}"
        )
    for key, head in sorted(capacity["headline"].items()):
        print(
            f"headline {key}: {head['knee_rate']:.0f} req/s at p99 SLO "
            f"(worst shape: {head['shape']}, {head['status']}) -> "
            f"{head['cells_per_host']:.0f} cells/host"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
