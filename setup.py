"""Legacy setup shim: this offline environment's setuptools cannot build
PEP 517 editable wheels, so `pip install -e .` goes through setup.py."""

from setuptools import find_packages, setup

setup(
    name="repro-soc",
    version="0.2.0",
    description=(
        "Reproduction of 'Coupling Neural Networks and Physics Equations for "
        "Li-Ion Battery State-of-Charge Prediction', plus a fleet-scale serving layer"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro-soc=repro.cli:main"]},
)
