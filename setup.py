"""Legacy setup shim: this offline environment's setuptools cannot build
PEP 517 editable wheels, so `pip install -e .` goes through setup.py."""

from setuptools import setup

setup()
