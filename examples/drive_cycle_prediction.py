"""Drive-cycle scenario: predict an EV battery's SoC along a route.

The paper motivates multi-horizon SoC prediction with battery-aware
route planning (Sec. III): a power manager wants to know, before
committing to a route segment, how much charge the segment will cost.

This example:

1. trains a PINN on LG-style mixed drive cycles (varying currents);
2. takes an unseen US06 (aggressive highway) cycle as "the route";
3. queries the model for the SoC after hypothetical segments of
   different intensity and duration — the what-if interface a planner
   would call;
4. compares against what the battery actually does.

Run:  python examples/drive_cycle_prediction.py
"""

from repro.core import PhysicsConfig, TrainConfig, train_two_branch
from repro.datasets import (
    LGConfig,
    generate_lg,
    make_estimation_samples,
    make_prediction_samples,
    smooth_cycle,
)
from repro.datasets.base import CycleSet
from repro.eval import mae

CONFIG = LGConfig(
    sampling_period_s=0.5,
    n_train_mixed=3,
    train_temps_c=(10.0, 25.0, 25.0),
    test_temps_c=(25.0,),
    mixed_segment_s=(180.0, 420.0),
    test_patterns=("us06",),
    seed=3,
)


def main() -> None:
    print("Generating LG-style drive-cycle campaign (tens of seconds)...")
    campaign = generate_lg(CONFIG)
    print(campaign.summary())

    # the 30 s moving average the paper applies before the network
    train_cycles = CycleSet([smooth_cycle(c, 30.0) for c in campaign.train()])
    route = smooth_cycle(campaign.test()[0], 30.0)

    estimation = make_estimation_samples(train_cycles, stride=10)
    prediction = make_prediction_samples(train_cycles, horizon_s=30.0, stride=10)
    model, _ = train_two_branch(
        estimation,
        prediction,
        model_config=None,
        train_config=TrainConfig(epochs_branch1=60, epochs_branch2=60, max_train_rows=8000, seed=0),
        physics=PhysicsConfig(horizons_s=(30.0, 50.0, 70.0)),
    )

    # Estimate the current state from the first sensor sample of the route.
    d = route.data
    soc_now = model.estimate_soc(d.voltage[0], d.current[0], d.temp_c[0])[0]
    print(f"\nat route start: measured V={d.voltage[0]:.3f} V, I={d.current[0]:.2f} A, "
          f"T={d.temp_c[0]:.1f} C")
    print(f"estimated SoC = {soc_now:.3f} (true {d.soc[0]:.3f})")

    # What-if queries: how much does each hypothetical next segment cost?
    print("\nwhat-if segment queries from the current state:")
    scenarios = [
        ("gentle cruise (0.5C)", 1.5, 60.0),
        ("highway segment (1C)", 3.0, 60.0),
        ("aggressive sprint (3C)", 9.0, 30.0),
        ("regen downhill (-0.5C)", -1.5, 60.0),
    ]
    for label, current, horizon in scenarios:
        soc_after = model.predict_soc(soc_now, current, 25.0, horizon)[0]
        print(f"  {label:<26s} {horizon:4.0f} s -> SoC {soc_now:.3f} -> {soc_after:.3f}")

    # Validate single-step predictions along the actual route.
    for horizon in (30.0, 70.0):
        samples = make_prediction_samples([route], horizon_s=horizon, stride=20)
        err = mae(model.predict_samples(samples), samples.soc_target)
        print(f"\nroute-wide prediction MAE @ {horizon:.0f} s: {err:.4f} (n={len(samples)})")


if __name__ == "__main__":
    main()
