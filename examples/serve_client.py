"""Serve a fleet over sockets and talk to it with the public client.

This is the multi-host serving loop in one file:

1. start a :class:`SocDaemon` — the same process ``repro-soc serve``
   runs — with two spawned socket shard workers;
2. connect a :class:`repro.serve.SocClient` by URL (the only import a
   consumer needs; no gateway internals);
3. register cells, estimate present SoC, predict future SoC;
4. grow the fleet by registering one more worker at runtime;
5. read the health/stats a dashboard would scrape.

In production the daemon runs standalone::

    repro-soc serve model.npz --listen tcp://0.0.0.0:7355 \
        --workers 2 --worker-transport tcp --journal fleet.journal

workers join from other hosts::

    repro-soc worker --connect tcp://daemon-host:7355 --name rack3

and this script's client half works unchanged against that daemon.

Run:  python examples/serve_client.py
"""

import numpy as np

from repro.core import TwoBranchSoCNet
from repro.serve import ShardedFleet, SocClient, WorkerSpec
from repro.serve.daemon import SocDaemon


def main() -> None:
    # 1. A daemon serving two spawned socket workers.  (Real deployments
    #    load a trained checkpoint; the untrained net keeps this fast.)
    model = TwoBranchSoCNet(rng=np.random.default_rng(0))
    spec = WorkerSpec(url="tcp://127.0.0.1:0", model=model, spawn=True, name="shard{shard}")
    daemon = SocDaemon(
        ShardedFleet(2, spec=spec),
        "tcp://127.0.0.1:0",  # port 0: the OS picks; daemon.url has it
        worker_spec=spec,
        control_interval_s=0.5,
    )
    with daemon:
        print(f"daemon listening on {daemon.url}")

        # 2. The public client: one URL, a context manager, typed errors.
        with SocClient(daemon.url) as client:
            hello = client.hello()
            print(f"connected to {hello['service']} ({len(hello['ops'])} ops)")

            # 3. Register a few cells and serve them.
            for cell_id, chemistry in [("pack0", "nmc"), ("pack1", "lfp"), ("pack2", "nmc")]:
                client.register_cell(cell_id, chemistry=chemistry)
            print(f"registered {len(client)} cells")

            soc = client.estimate("pack0", voltage=3.71, current=1.2, temp_c=25.0)
            print(f"pack0 SoC now: {soc:.4f}")
            future = client.predict("pack0", current_avg=2.0, temp_avg_c=25.0, horizon_s=300.0)
            print(f"pack0 SoC after 300 s at 2 A: {future:.4f}")

            # 4. Grow the fleet at runtime: hand the daemon a worker URL
            #    (here we cheat and spawn locally; across hosts you'd
            #    start `repro-soc worker --listen tcp://0.0.0.0:7456`
            #    on the new machine and register that address).
            from repro.serve import RemoteShardWorker

            spare = RemoteShardWorker(
                "tcp://127.0.0.1:0", default_model=model, spawn=True, name="spare"
            )
            spare._drop_link()  # free the listener: the daemon dials it
            index = client.add_worker(spare.url)
            print(f"worker {spare.url} joined as shard {index}")
            print(f"worker health: {client.worker_health()}")

            # 5. The numbers a dashboard scrapes.
            stats = client.stats()
            for endpoint in ("estimate", "predict"):
                if endpoint in stats:
                    print(
                        f"{endpoint}: {stats[endpoint]['completed']} served, "
                        f"p50 {stats[endpoint]['p50_ms']:.2f} ms"
                    )
            spare.close()
    print("daemon stopped")


if __name__ == "__main__":
    main()
