"""Quickstart: train the two-branch PINN and predict future SoC.

This walks the full pipeline on a small synthetic Sandia-style
campaign:

1. generate a cycling campaign with the battery simulator;
2. extract training samples for both branches;
3. train with the physics-informed loss (Eq. 2 of the paper);
4. estimate the present SoC from sensor readings (Branch 1);
5. predict the SoC after a hypothetical future workload (Branch 2),
   including horizons that never appear in the training data.

Run:  python examples/quickstart.py
"""

from repro.core import PhysicsConfig, TrainConfig, model_complexity, train_two_branch
from repro.datasets import (
    SandiaConfig,
    generate_sandia,
    make_estimation_samples,
    make_prediction_samples,
)
from repro.eval import mae


def main() -> None:
    # 1. A small campaign: one NMC cell, three ambient temperatures.
    #    Train cycles discharge at 1C; test cycles at the unseen 2C/3C.
    print("Generating the synthetic cycling campaign (a few seconds)...")
    campaign = generate_sandia(SandiaConfig(cells=("sandia-nmc",), sim_dt_s=2.0, seed=7))
    print(campaign.summary())

    # 2. Branch-1 rows (V, I, T) -> SoC and Branch-2 windows at N = 120 s.
    estimation = make_estimation_samples(campaign.train())
    prediction = make_prediction_samples(campaign.train(), horizon_s=120.0)
    print(f"\ntraining rows: {len(estimation)} estimation, {len(prediction)} prediction")

    # 3. Train with the Coulomb-counting physics loss over three horizons
    #    (PINN-All in the paper's terminology).
    physics = PhysicsConfig(horizons_s=(120.0, 240.0, 360.0))
    model, logs = train_two_branch(
        estimation,
        prediction,
        train_config=TrainConfig(epochs_branch1=120, epochs_branch2=120, seed=0),
        physics=physics,
    )
    print(f"\ntrained {model}")
    print(f"complexity: {model_complexity(model)}")
    print(f"final losses: branch1={logs['branch1'].last()['loss']:.4f} "
          f"branch2={logs['branch2'].last()['loss']:.4f}")

    # 4. Estimate the current SoC from one sensor reading.
    voltage, current, temp = 3.72, 3.0, 25.0
    soc_now = model.estimate_soc(voltage, current, temp)[0]
    print(f"\nsensor reading V={voltage} V, I={current} A, T={temp} C "
          f"-> estimated SoC(t) = {soc_now:.3f}")

    # 5. Predict the future SoC for a hypothetical workload, sweeping the
    #    horizon — including values absent from the training data.
    print("\nfuture SoC under a 6 A (2C) load:")
    for horizon in (120.0, 240.0, 360.0):
        soc_future = model.predict_soc(soc_now, 6.0, temp, horizon)[0]
        print(f"  after {horizon:5.0f} s -> SoC = {soc_future:.3f}")
    # The physics loss covered 120-360 s; the paper restricts itself to
    # Np >= N for the same reason we do not query below 120 s here.

    # How good is the model on the unseen high-rate test cycles?
    for horizon in (120.0, 360.0):
        test = make_prediction_samples(campaign.test(), horizon_s=horizon)
        err = mae(model.predict_samples(test), test.soc_target)
        print(f"test MAE @ {horizon:.0f} s horizon: {err:.4f}  (n={len(test)})")


if __name__ == "__main__":
    main()
