"""Estimator shoot-out: two-branch Branch 1 vs LSTM vs DE-MLP vs EKF.

Table I of the paper compares SoC *estimation* accuracy and model cost
across method families.  This example trains/configures four estimators
on the same synthetic campaign and prints accuracy next to parameter
count — reproducing the paper's punchline that a 1.2k-parameter branch
matches models orders of magnitude larger.

- Branch 1 of the two-branch network (ours);
- a Wong-style LSTM window estimator (data-driven state of the art);
- a Dang-style DE-MLP (the closest published PINN);
- an EKF on a 1-RC equivalent circuit (classic model-based observer,
  given the true cell parameters — a strong physics anchor).

Run:  python examples/estimator_shootout.py
"""

import numpy as np

from repro.baselines import (
    DEConfig,
    EKFConfig,
    EKFSoCEstimator,
    LSTMConfig,
    make_de_pairs,
    make_sequence_samples,
    train_de_estimator,
    train_lstm_estimator,
)
from repro.battery import get_cell_spec
from repro.core import TrainConfig, train_two_branch
from repro.datasets import (
    SandiaConfig,
    generate_sandia,
    make_estimation_samples,
    make_prediction_samples,
)
from repro.eval import format_table, mae


def main() -> None:
    print("Generating campaign (a few seconds)...")
    campaign = generate_sandia(SandiaConfig(cells=("sandia-nmc",), sim_dt_s=2.0, seed=9))
    train, test = campaign.train(), campaign.test()
    est_train = make_estimation_samples(train)
    est_test = make_estimation_samples(test)
    rows = []

    # --- ours: Branch 1 of the two-branch network --------------------
    pred_train = make_prediction_samples(train, horizon_s=120.0)
    model, _ = train_two_branch(
        est_train, pred_train,
        train_config=TrainConfig(epochs_branch1=120, epochs_branch2=0, seed=0),
    )
    ours = model.estimate_soc(est_test.features[:, 0], est_test.features[:, 1], est_test.features[:, 2])
    rows.append(["Branch 1 (ours)", mae(ours, est_test.soc), model.branch1.num_parameters()])

    # --- LSTM window estimator ----------------------------------------
    lstm_cfg = LSTMConfig(hidden_size=32, num_layers=1, dense_size=16, seq_len=8,
                          sample_stride=1, epochs=15, max_train_rows=800, seed=0)
    seq_train = make_sequence_samples(train, seq_len=8, sample_stride=1)
    seq_test = make_sequence_samples(test, seq_len=8, sample_stride=1)
    lstm, _ = train_lstm_estimator(seq_train, lstm_cfg)
    rows.append(["LSTM (Wong-style)", mae(lstm.estimate(seq_test.sequences), seq_test.soc),
                 lstm.num_parameters()])

    # --- DE-MLP --------------------------------------------------------
    de, _ = train_de_estimator(make_de_pairs(train), DEConfig(backbone="mlp", epochs=30, seed=0))
    rows.append(["DE-MLP (Dang-style)", mae(de.estimate(est_test.features), est_test.soc),
                 de.num_parameters()])

    # --- EKF on a 1-RC model (true parameters, wrong prior) ----------
    spec = get_cell_spec("sandia-nmc")
    ekf_errors = []
    for cycle in test:
        ekf = EKFSoCEstimator(spec, EKFConfig(initial_soc=0.5))
        estimates = ekf.run(cycle.data.voltage, cycle.data.current, cycle.sampling_period_s)
        ekf_errors.append(np.abs(estimates - cycle.data.soc))
    rows.append(["EKF (1-RC observer)", float(np.mean(np.concatenate(ekf_errors))), 2])

    print()
    print(format_table(["estimator", "SoC(t) MAE (unseen rates)", "parameters"], rows))
    print("\nNote: the EKF 'parameters' are its 2 state variables — it needs")
    print("the full cell model instead of learned weights.")


if __name__ == "__main__":
    main()
