"""Battery-lifetime estimation by autoregressive rollout (paper Fig. 2/5).

Given only the *first* sensor sample and the planned workload, chain the
network forward to trace the whole discharge: Branch 1 once for the
initial SoC, then Branch 2 autoregressively every N seconds.  This is
the task the paper highlights as impossible for estimation-only methods
(they need voltage at every instant; the rollout uses it only at t=0).

The example compares three predictors over a full synthetic discharge:

- the trained PINN (physics-informed two-branch network);
- a purely data-driven twin (No-PINN);
- pure Coulomb counting with the datasheet capacity (Physics-Only),
  which drifts because the cell's actual capacity differs.

Run:  python examples/full_discharge_rollout.py
"""

import numpy as np

from repro.baselines import PhysicsOnlyModel
from repro.core import PhysicsConfig, TrainConfig, model_rollout, rollout_cycle, train_two_branch
from repro.datasets import (
    LGConfig,
    generate_lg,
    make_estimation_samples,
    make_prediction_samples,
    smooth_cycle,
)
from repro.datasets.base import CycleSet

CONFIG = LGConfig(
    sampling_period_s=0.5,
    n_train_mixed=3,
    train_temps_c=(10.0, 25.0, 25.0),
    test_temps_c=(25.0,),
    mixed_segment_s=(180.0, 420.0),
    test_patterns=("la92",),
    seed=5,
)


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Render a trajectory as a one-line unicode sparkline."""
    blocks = " .:-=+*#%@"
    idx = np.linspace(0, len(values) - 1, width).astype(int)
    v = np.clip(values[idx], 0.0, 1.0)
    return "".join(blocks[int(x * (len(blocks) - 1))] for x in v)


def main() -> None:
    print("Generating campaign (tens of seconds)...")
    campaign = generate_lg(CONFIG)
    train_cycles = CycleSet([smooth_cycle(c, 30.0) for c in campaign.train()])
    cycle = smooth_cycle(campaign.test()[0], 30.0)
    print(f"rollout target: {cycle.name}, {cycle.duration_s():.0f} s discharge")

    estimation = make_estimation_samples(train_cycles, stride=10)
    prediction = make_prediction_samples(train_cycles, horizon_s=30.0, stride=10)
    train_cfg = TrainConfig(epochs_branch1=60, epochs_branch2=60, max_train_rows=8000, seed=0)

    pinn, _ = train_two_branch(
        estimation, prediction, train_config=train_cfg,
        physics=PhysicsConfig(horizons_s=(30.0, 50.0, 70.0)),
    )
    no_pinn, _ = train_two_branch(estimation, prediction, train_config=train_cfg, physics=None)
    physics_only = PhysicsOnlyModel(cycle.capacity_ah)

    step_s = 30.0
    results = {
        "PINN": model_rollout(pinn, cycle, step_s),
        "No-PINN": model_rollout(no_pinn, cycle, step_s),
        "Physics-Only": rollout_cycle(
            physics_only.rollout_step, cycle, step_s, initial_soc=float(cycle.data.soc[0])
        ),
    }

    truth = results["PINN"].soc_true
    print(f"\nsteps: {len(truth) - 1} x {step_s:.0f} s   (voltage used only at t=0)")
    print(f"{'ground truth':<14s} {sparkline(truth)}")
    for name, rollout in results.items():
        print(f"{name:<14s} {sparkline(rollout.soc_pred)}")
    print()
    print(f"{'model':<14s} {'trajectory MAE':>15s} {'final |error|':>14s}")
    for name, rollout in results.items():
        print(f"{name:<14s} {rollout.mae():>15.4f} {rollout.final_error():>14.4f}")

    # end-of-discharge time estimate: first step where predicted SoC < 5%
    print("\npredicted vs true time-to-empty (SoC < 0.05):")
    true_idx = np.argmax(truth < 0.05) if np.any(truth < 0.05) else len(truth) - 1
    for name, rollout in results.items():
        below = rollout.soc_pred < 0.05
        idx = np.argmax(below) if np.any(below) else len(rollout.soc_pred) - 1
        print(f"  {name:<14s} {rollout.time_s[idx]:>7.0f} s  (true {rollout.time_s[true_idx]:.0f} s)")


if __name__ == "__main__":
    main()
